package slm

import (
	"testing"
)

func newTestNER() *NER {
	n := NewNER()
	n.AddGazetteer(EntProduct, "Product Alpha", "Product Beta", "Widget Pro")
	n.AddGazetteer(EntDrug, "Drug A", "Drug B", "Aspirin")
	n.AddGazetteer(EntSideEffect, "nausea", "headache", "fatigue", "dizziness")
	n.AddGazetteer(EntManufacturer, "Acme Corp", "Globex")
	return n
}

func findEntity(ents []Entity, typ EntityType) (Entity, bool) {
	for _, e := range ents {
		if e.Type == typ {
			return e, true
		}
	}
	return Entity{}, false
}

func TestNERGazetteer(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("Customers who bought Product Alpha reported nausea.")
	p, ok := findEntity(ents, EntProduct)
	if !ok || p.Canonical != "product alpha" {
		t.Fatalf("product not found: %v", ents)
	}
	s, ok := findEntity(ents, EntSideEffect)
	if !ok || s.Canonical != "nausea" {
		t.Fatalf("side effect not found: %v", ents)
	}
}

func TestNERLongestMatchWins(t *testing.T) {
	n := NewNER()
	n.AddGazetteer(EntProduct, "Widget")
	n.AddGazetteer(EntProduct, "Widget Pro Max")
	ents := n.Recognize("The Widget Pro Max is popular.")
	e, ok := findEntity(ents, EntProduct)
	if !ok {
		t.Fatal("no product entity")
	}
	if e.Canonical != "widget pro max" {
		t.Errorf("got %q, want longest match", e.Canonical)
	}
}

func TestNERQuarter(t *testing.T) {
	n := newTestNER()
	for _, text := range []string{"Sales rose in Q2.", "the second quarter was strong", "Q3 2024 results"} {
		ents := n.Recognize(text)
		if _, ok := findEntity(ents, EntQuarter); !ok {
			t.Errorf("no quarter in %q: %v", text, ents)
		}
	}
	ents := n.Recognize("the second quarter was strong")
	q, _ := findEntity(ents, EntQuarter)
	if q.Canonical != "q2" {
		t.Errorf("ordinal quarter canonical = %q, want q2", q.Canonical)
	}
}

func TestNERPercentMoneyRating(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("Revenue grew 15% to $2.5 million and the item was rated 4.5 stars.")
	if p, ok := findEntity(ents, EntPercent); !ok || p.Canonical != "15%" {
		t.Errorf("percent: %v", ents)
	}
	if m, ok := findEntity(ents, EntMoney); !ok || m.Text != "$2.5 million" {
		t.Errorf("money: %v", ents)
	}
	if r, ok := findEntity(ents, EntRating); !ok || r.Canonical != "4.5" {
		t.Errorf("rating: %v", ents)
	}
}

func TestNERPercentWord(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("sales increased 20 percent")
	p, ok := findEntity(ents, EntPercent)
	if !ok || p.Canonical != "20%" {
		t.Errorf("percent-word: %v", ents)
	}
}

func TestNERDates(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("Enrolled on 2024-05-01 and discharged May 9, 2024.")
	var dates []Entity
	for _, e := range ents {
		if e.Type == EntDate {
			dates = append(dates, e)
		}
	}
	if len(dates) != 2 {
		t.Fatalf("got %d dates: %v", len(dates), ents)
	}
	if dates[0].Canonical != "2024-05-01" {
		t.Errorf("iso date canonical = %q", dates[0].Canonical)
	}
}

func TestNERIDs(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("Patient P-1042 enrolled in TRIAL_7.")
	count := 0
	for _, e := range ents {
		if e.Type == EntID {
			count++
		}
	}
	if count != 2 {
		t.Errorf("got %d IDs: %v", count, ents)
	}
}

func TestNERQuantity(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("shipped 12 units yesterday")
	q, ok := findEntity(ents, EntQuantity)
	if !ok || q.Text != "12 units" {
		t.Errorf("quantity: %v", ents)
	}
}

func TestNERProperNounFallback(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("Customers praised Zenith Deluxe for battery life.")
	m, ok := findEntity(ents, EntMisc)
	if !ok || m.Canonical != "zenith deluxe" {
		t.Errorf("misc proper noun: %v", ents)
	}
}

func TestNEREntitiesSorted(t *testing.T) {
	n := newTestNER()
	ents := n.Recognize("Drug A reduced headache by 30% in Q1 for patient P-9.")
	for i := 1; i < len(ents); i++ {
		if ents[i].Start < ents[i-1].Start {
			t.Fatalf("entities not sorted: %v", ents)
		}
	}
}

func TestNEREmptyAndNoEntities(t *testing.T) {
	n := newTestNER()
	if got := n.Recognize(""); len(got) != 0 {
		t.Errorf("empty text: %v", got)
	}
	if got := n.Recognize("nothing notable here"); len(got) != 0 {
		t.Errorf("plain text: %v", got)
	}
}

func TestNERCanonicalStripsDeterminer(t *testing.T) {
	if canonicalize("The Product Alpha") != "product alpha" {
		t.Errorf("canonicalize = %q", canonicalize("The Product Alpha"))
	}
}

func TestNERCostAccounting(t *testing.T) {
	cost := NewCostModel(SLMProfile())
	n := newTestNER().WithCost(cost)
	n.Recognize("Product Alpha sold well in Q2.")
	if cost.Calls(OpTag) != 1 {
		t.Errorf("tag calls = %d, want 1", cost.Calls(OpTag))
	}
	if cost.Tokens(OpTag) == 0 {
		t.Error("tag tokens = 0")
	}
}

func TestNEROffsetsValid(t *testing.T) {
	n := newTestNER()
	text := "Acme Corp launched Widget Pro at $99 with 4 stars in Q4 2023."
	for _, e := range n.Recognize(text) {
		if e.Start < 0 || e.End > len(text) || e.Start >= e.End {
			t.Fatalf("bad offsets: %+v", e)
		}
		if text[e.Start:e.End] != e.Text {
			t.Errorf("surface mismatch: %q vs %q", e.Text, text[e.Start:e.End])
		}
	}
}
