package slm

import (
	"math"
	"sort"
	"strings"
)

// Candidate is a possible answer with an unnormalized support weight.
// Callers either supply candidates directly (the hybrid pipeline knows
// its TableQA result and its competitors) or let the generator derive
// them from evidence text.
type Candidate struct {
	Text   string  // canonical answer content
	Weight float64 // unnormalized support; higher = more likely
}

// Generation is one sampled answer together with the probability the
// generator assigned to its underlying candidate — the "sequence
// likelihood" used by the likelihood baseline in experiment E6.
type Generation struct {
	Text      string  // surface form (possibly paraphrased)
	Canonical string  // candidate content before paraphrasing
	Prob      float64 // softmax probability of the chosen candidate
}

// Generator is the simulated SLM decoder. Given candidates it samples
// an answer with temperature: at temperature→0 it is greedy (always the
// max-weight candidate); higher temperatures spread probability over
// competing candidates, which is what semantic entropy measures.
//
// ErrorRate injects model fallibility: with that probability the
// sampled candidate is replaced by a uniformly chosen competitor. This
// is the knob the calibration experiment sweeps — a real SLM's accuracy
// cannot be dialed, a simulated one's can.
type Generator struct {
	Temperature float64 // softmax temperature; <= 0 means greedy
	ErrorRate   float64 // probability of answering with a competitor
	Paraphrase  bool    // vary surface form across samples
	cost        *CostModel
}

// NewGenerator returns a generator with temperature 0.7 and
// paraphrasing on, matching the multi-sample setting of Section III.D.
func NewGenerator() *Generator {
	return &Generator{Temperature: 0.7, Paraphrase: true}
}

// WithCost attaches a cost model; each Generate call is accounted as a
// decode pass proportional to the answer length. It returns g.
func (g *Generator) WithCost(c *CostModel) *Generator {
	g.cost = c
	return g
}

// Generate samples one answer from candidates. It returns the zero
// Generation if candidates is empty.
func (g *Generator) Generate(candidates []Candidate, rng *RNG) Generation {
	if len(candidates) == 0 {
		return Generation{}
	}
	probs := softmax(candidates, g.Temperature)
	idx := sampleIndex(probs, rng, g.Temperature)
	if g.ErrorRate > 0 && len(candidates) > 1 && rng.Float64() < g.ErrorRate {
		// Answer with a uniformly chosen competitor.
		j := rng.Intn(len(candidates) - 1)
		if j >= idx {
			j++
		}
		idx = j
	}
	chosen := candidates[idx]
	text := chosen.Text
	if g.Paraphrase {
		text = paraphrase(chosen.Text, rng)
	}
	if g.cost != nil {
		g.cost.Record(OpGenerate, len(Tokenize(text))+len(candidates))
	}
	return Generation{Text: text, Canonical: chosen.Text, Prob: probs[idx]}
}

// Sample draws m independent generations, the input to semantic-entropy
// scoring.
func (g *Generator) Sample(candidates []Candidate, m int, rng *RNG) []Generation {
	out := make([]Generation, 0, m)
	for i := 0; i < m; i++ {
		out = append(out, g.Generate(candidates, rng))
	}
	return out
}

// DeriveCandidates builds answer candidates from evidence sentences by
// lexical affinity to the question: each evidence string contributes
// its most salient entity/value span, weighted by word overlap with the
// question. This mimics extractive QA with a reader SLM.
func DeriveCandidates(question string, evidence []string, ner *NER) []Candidate {
	qWords := contentWordSet(question)
	byText := make(map[string]float64)
	for _, ev := range evidence {
		overlap := overlapScore(qWords, ev)
		if overlap == 0 {
			continue
		}
		span := salientSpan(ev, ner)
		if span == "" {
			continue
		}
		byText[span] += overlap
	}
	cands := make([]Candidate, 0, len(byText))
	for t, w := range byText {
		cands = append(cands, Candidate{Text: t, Weight: w})
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Weight != cands[j].Weight {
			return cands[i].Weight > cands[j].Weight
		}
		return cands[i].Text < cands[j].Text
	})
	return cands
}

// salientSpan picks the answer-bearing span of an evidence sentence:
// prefer value-like entities (percent, money, rating, quantity, date),
// then any entity, then the sentence itself.
func salientSpan(sentence string, ner *NER) string {
	ents := ner.Recognize(sentence)
	var fallback string
	for _, e := range ents {
		switch e.Type {
		case EntPercent, EntMoney, EntRating, EntQuantity, EntDate, EntQuarter:
			return e.Text
		default:
			if fallback == "" {
				fallback = e.Text
			}
		}
	}
	if fallback != "" {
		return fallback
	}
	s := strings.TrimSpace(sentence)
	if len(s) > 80 {
		s = s[:80]
	}
	return s
}

func contentWordSet(s string) map[string]bool {
	set := make(map[string]bool)
	for _, w := range Words(Tokenize(s)) {
		if !stopwords[w] {
			set[stem(w)] = true
		}
	}
	return set
}

func overlapScore(qWords map[string]bool, evidence string) float64 {
	if len(qWords) == 0 {
		return 0
	}
	n := 0
	for _, w := range Words(Tokenize(evidence)) {
		if qWords[stem(w)] {
			n++
		}
	}
	return float64(n) / float64(len(qWords))
}

// softmax converts weights to probabilities at the given temperature.
// temperature <= 0 produces a one-hot distribution on the max weight.
func softmax(cands []Candidate, temperature float64) []float64 {
	probs := make([]float64, len(cands))
	if temperature <= 0 {
		best := 0
		for i, c := range cands {
			if c.Weight > cands[best].Weight {
				best = i
			}
		}
		probs[best] = 1
		return probs
	}
	maxW := cands[0].Weight
	for _, c := range cands[1:] {
		if c.Weight > maxW {
			maxW = c.Weight
		}
	}
	var sum float64
	for i, c := range cands {
		probs[i] = math.Exp((c.Weight - maxW) / temperature)
		sum += probs[i]
	}
	for i := range probs {
		probs[i] /= sum
	}
	return probs
}

func sampleIndex(probs []float64, rng *RNG, temperature float64) int {
	if temperature <= 0 {
		for i, p := range probs {
			if p == 1 {
				return i
			}
		}
	}
	x := rng.Float64()
	acc := 0.0
	for i, p := range probs {
		acc += p
		if x < acc {
			return i
		}
	}
	return len(probs) - 1
}

// paraphraseTemplates vary the surface form while preserving the
// canonical content, so semantically equivalent samples form one
// cluster (low entropy) even though their strings differ.
var paraphraseTemplates = []string{
	"%s",
	"The answer is %s.",
	"It is %s.",
	"%s, according to the records.",
	"Based on the data, %s.",
	"The records indicate %s.",
}

func paraphrase(answer string, rng *RNG) string {
	t := paraphraseTemplates[rng.Intn(len(paraphraseTemplates))]
	return strings.Replace(t, "%s", answer, 1)
}
