package slm

import (
	"math"
	"strings"
	"testing"
)

func TestGeneratorGreedy(t *testing.T) {
	g := &Generator{Temperature: 0}
	rng := NewRNG(1)
	cands := []Candidate{{Text: "weak", Weight: 1}, {Text: "strong", Weight: 10}}
	for i := 0; i < 20; i++ {
		got := g.Generate(cands, rng)
		if got.Canonical != "strong" {
			t.Fatalf("greedy picked %q", got.Canonical)
		}
		if got.Prob != 1 {
			t.Fatalf("greedy prob = %v", got.Prob)
		}
	}
}

func TestGeneratorEmptyCandidates(t *testing.T) {
	g := NewGenerator()
	if got := g.Generate(nil, NewRNG(1)); got.Text != "" {
		t.Errorf("empty candidates produced %+v", got)
	}
}

func TestGeneratorTemperatureSpreads(t *testing.T) {
	cands := []Candidate{{Text: "a", Weight: 1}, {Text: "b", Weight: 1}}
	g := &Generator{Temperature: 1.0}
	rng := NewRNG(7)
	seen := map[string]int{}
	for i := 0; i < 200; i++ {
		seen[g.Generate(cands, rng).Canonical]++
	}
	if seen["a"] == 0 || seen["b"] == 0 {
		t.Errorf("equal-weight candidates not both sampled: %v", seen)
	}
}

func TestGeneratorDeterministicUnderSeed(t *testing.T) {
	cands := []Candidate{{Text: "x", Weight: 2}, {Text: "y", Weight: 1}}
	g := NewGenerator()
	a := g.Sample(cands, 10, NewRNG(42))
	b := g.Sample(cands, 10, NewRNG(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("sampling not deterministic under seed")
		}
	}
}

func TestGeneratorErrorRate(t *testing.T) {
	cands := []Candidate{{Text: "right", Weight: 100}, {Text: "wrong", Weight: 0.01}}
	g := &Generator{Temperature: 0.1, ErrorRate: 0.5}
	rng := NewRNG(3)
	wrong := 0
	for i := 0; i < 400; i++ {
		if g.Generate(cands, rng).Canonical == "wrong" {
			wrong++
		}
	}
	frac := float64(wrong) / 400
	if math.Abs(frac-0.5) > 0.1 {
		t.Errorf("error fraction = %v, want ~0.5", frac)
	}
}

func TestGeneratorParaphrasePreservesCanonical(t *testing.T) {
	cands := []Candidate{{Text: "42 units", Weight: 1}}
	g := NewGenerator()
	rng := NewRNG(5)
	for i := 0; i < 20; i++ {
		gen := g.Generate(cands, rng)
		if gen.Canonical != "42 units" {
			t.Fatalf("canonical changed: %+v", gen)
		}
		if !strings.Contains(gen.Text, "42 units") {
			t.Fatalf("paraphrase lost content: %q", gen.Text)
		}
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	cands := []Candidate{{Weight: 1}, {Weight: 3}, {Weight: 0.2}}
	probs := softmax(cands, 0.7)
	var sum float64
	for _, p := range probs {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("softmax sum = %v", sum)
	}
	if probs[1] <= probs[0] || probs[1] <= probs[2] {
		t.Errorf("softmax order wrong: %v", probs)
	}
}

func TestDeriveCandidates(t *testing.T) {
	ner := newTestNER()
	evidence := []string{
		"Product Alpha sales increased 20% in Q2.",
		"Weather was mild across the region.",
		"Product Alpha was rated 4.5 stars.",
	}
	cands := DeriveCandidates("How much did Product Alpha sales increase in Q2?", evidence, ner)
	if len(cands) == 0 {
		t.Fatal("no candidates derived")
	}
	if cands[0].Text != "20%" {
		t.Errorf("top candidate = %q, want 20%%", cands[0].Text)
	}
	for _, c := range cands {
		if strings.Contains(c.Text, "Weather") {
			t.Errorf("irrelevant evidence produced candidate %q", c.Text)
		}
	}
}

func TestDeriveCandidatesEmptyEvidence(t *testing.T) {
	if got := DeriveCandidates("anything?", nil, newTestNER()); len(got) != 0 {
		t.Errorf("empty evidence: %v", got)
	}
}

func TestSampleCount(t *testing.T) {
	g := NewGenerator()
	gens := g.Sample([]Candidate{{Text: "a", Weight: 1}}, 7, NewRNG(1))
	if len(gens) != 7 {
		t.Errorf("got %d samples, want 7", len(gens))
	}
}

func TestGeneratorCostAccounting(t *testing.T) {
	cost := NewCostModel(SLMProfile())
	g := NewGenerator().WithCost(cost)
	g.Generate([]Candidate{{Text: "answer", Weight: 1}}, NewRNG(1))
	if cost.Calls(OpGenerate) != 1 {
		t.Errorf("generate calls = %d", cost.Calls(OpGenerate))
	}
}
