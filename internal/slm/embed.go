package slm

import (
	"hash/fnv"
	"math"
	"strings"
)

// Embedder maps text into a fixed-dimension vector space using feature
// hashing over unigrams and bigrams. It is the simulated stand-in for
// the SLM's sentence encoder: deterministic, cheap, and good enough that
// lexically/semantically similar sentences land close in cosine space,
// which is all the dense-retrieval baseline and the semantic-entropy
// clusterer need.
type Embedder struct {
	dim  int
	cost *CostModel
}

// DefaultEmbeddingDim is the vector dimensionality used across the
// system unless configured otherwise.
const DefaultEmbeddingDim = 128

// NewEmbedder returns an embedder producing dim-dimensional unit
// vectors. It panics if dim <= 0.
func NewEmbedder(dim int) *Embedder {
	if dim <= 0 {
		panic("slm: embedder dimension must be positive")
	}
	return &Embedder{dim: dim}
}

// WithCost attaches a cost model; each Embed call is accounted as one
// simulated encoder pass over the token length. It returns e.
func (e *Embedder) WithCost(c *CostModel) *Embedder {
	e.cost = c
	return e
}

// Dim returns the embedding dimensionality.
func (e *Embedder) Dim() int { return e.dim }

// Embed encodes text as an L2-normalized vector. The zero vector is
// returned for empty/stopword-only input.
func (e *Embedder) Embed(text string) []float32 {
	words := Words(Tokenize(text))
	if e.cost != nil {
		e.cost.Record(OpEmbed, len(words))
	}
	v := make([]float32, e.dim)
	prev := ""
	for _, w := range words {
		if stopwords[w] {
			prev = ""
			continue
		}
		w = stem(w)
		addFeature(v, w, 1.0)
		if prev != "" {
			addFeature(v, prev+"_"+w, 0.5)
		}
		prev = w
	}
	normalize(v)
	return v
}

// addFeature hashes the feature into two buckets with opposite signs
// (sign trick) to reduce collisions' bias.
func addFeature(v []float32, feature string, weight float32) {
	h := fnv.New64a()
	h.Write([]byte(feature))
	sum := h.Sum64()
	idx := int(sum % uint64(len(v)))
	sign := float32(1)
	if (sum>>63)&1 == 1 {
		sign = -1
	}
	v[idx] += sign * weight
	idx2 := int((sum >> 17) % uint64(len(v)))
	v[idx2] += sign * weight * 0.5
}

func normalize(v []float32) {
	var sum float64
	for _, x := range v {
		sum += float64(x) * float64(x)
	}
	if sum == 0 {
		return
	}
	inv := float32(1 / math.Sqrt(sum))
	for i := range v {
		v[i] *= inv
	}
}

// Cosine returns the cosine similarity of two vectors of equal length.
// Inputs produced by Embed are unit-length, so this is their dot
// product; the function still guards against zero vectors.
func Cosine(a, b []float32) float64 {
	if len(a) != len(b) {
		return 0
	}
	var dot, na, nb float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
		na += float64(a[i]) * float64(a[i])
		nb += float64(b[i]) * float64(b[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// stem applies a tiny suffix stemmer (plural/verb/adverb endings) so
// "increase", "increased" and "increases" share features.
func stem(w string) string {
	switch {
	case len(w) > 4 && strings.HasSuffix(w, "ies"):
		w = w[:len(w)-3] + "y"
	case len(w) > 4 && strings.HasSuffix(w, "ing"):
		w = w[:len(w)-3]
	case len(w) > 4 && strings.HasSuffix(w, "ed"):
		w = w[:len(w)-2]
	case len(w) > 4 && strings.HasSuffix(w, "ly"):
		w = w[:len(w)-2]
	case len(w) > 3 && strings.HasSuffix(w, "es") && hasSibilantBefore(w):
		w = w[:len(w)-2]
	case len(w) > 2 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss"):
		w = w[:len(w)-1]
	}
	// Drop a final silent 'e' on longer stems so "increase" meets the
	// "increas" produced by the "-ed" rule.
	if len(w) > 4 && strings.HasSuffix(w, "e") {
		w = w[:len(w)-1]
	}
	return w
}

// hasSibilantBefore reports whether the "-es" plural follows a sibilant
// (box/es, class/es, church/es), where stripping "es" is correct.
func hasSibilantBefore(w string) bool {
	base := w[:len(w)-2]
	return strings.HasSuffix(base, "s") || strings.HasSuffix(base, "x") ||
		strings.HasSuffix(base, "z") || strings.HasSuffix(base, "ch") ||
		strings.HasSuffix(base, "sh")
}

// stopwords excluded from embedding and BM25 features.
var stopwords = map[string]bool{
	"the": true, "a": true, "an": true, "of": true, "in": true, "on": true,
	"at": true, "to": true, "for": true, "and": true, "or": true, "is": true,
	"are": true, "was": true, "were": true, "be": true, "been": true,
	"by": true, "with": true, "from": true, "that": true, "this": true,
	"it": true, "as": true, "its": true, "their": true, "has": true,
	"have": true, "had": true, "not": true, "but": true, "what": true,
	"which": true, "who": true, "how": true, "do": true, "does": true,
	"did": true, "than": true, "then": true, "so": true, "such": true,
	"all": true, "each": true, "per": true, "any": true, "no": true,
	"if": true, "into": true, "over": true, "under": true, "between": true,
}

// IsStopword reports whether the lower-cased word is in the shared
// stopword list. Exposed for the retrieval baselines.
func IsStopword(w string) bool { return stopwords[w] }
