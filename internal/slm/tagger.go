package slm

import "strings"

// POS is a coarse part-of-speech tag. The tagger is intentionally
// lightweight — the paper's SLM performs "part-of-speech tagging and
// named-entity recognition" as the first stage of Relational Table
// Generation (Section III.C), and the extraction rules only need this
// coarse inventory.
type POS int

// Coarse tag inventory.
const (
	POSNoun POS = iota
	POSProperNoun
	POSVerb
	POSAdjective
	POSNumber
	POSDeterminer
	POSPreposition
	POSConjunction
	POSPronoun
	POSPunct
	POSOther
)

// String returns the conventional short tag name.
func (p POS) String() string {
	switch p {
	case POSNoun:
		return "NOUN"
	case POSProperNoun:
		return "PROPN"
	case POSVerb:
		return "VERB"
	case POSAdjective:
		return "ADJ"
	case POSNumber:
		return "NUM"
	case POSDeterminer:
		return "DET"
	case POSPreposition:
		return "ADP"
	case POSConjunction:
		return "CCONJ"
	case POSPronoun:
		return "PRON"
	case POSPunct:
		return "PUNCT"
	default:
		return "X"
	}
}

// TaggedToken pairs a surface token with its coarse tag.
type TaggedToken struct {
	Token
	POS POS
}

var determiners = map[string]bool{
	"the": true, "a": true, "an": true, "this": true, "that": true,
	"these": true, "those": true, "all": true, "each": true, "every": true,
	"some": true, "any": true, "no": true,
}

var prepositions = map[string]bool{
	"of": true, "in": true, "on": true, "at": true, "by": true, "for": true,
	"from": true, "to": true, "with": true, "during": true, "over": true,
	"under": true, "between": true, "across": true, "per": true, "than": true,
	"into": true, "after": true, "before": true, "since": true, "about": true,
}

var conjunctions = map[string]bool{
	"and": true, "or": true, "but": true, "nor": true, "so": true, "yet": true,
	"while": true, "whereas": true,
}

var pronouns = map[string]bool{
	"i": true, "you": true, "he": true, "she": true, "it": true, "we": true,
	"they": true, "them": true, "him": true, "her": true, "its": true,
	"their": true, "his": true, "our": true, "your": true, "who": true,
	"which": true, "what": true, "whose": true,
}

// verbLexicon lists verbs the extraction and cue-inference rules care
// about; suffix heuristics cover the rest.
var verbLexicon = map[string]bool{
	"is": true, "are": true, "was": true, "were": true, "be": true, "been": true,
	"has": true, "have": true, "had": true, "do": true, "does": true, "did": true,
	"increase": true, "increased": true, "decrease": true, "decreased": true,
	"rose": true, "fell": true, "grew": true, "dropped": true, "declined": true,
	"bought": true, "purchased": true, "sold": true, "ordered": true,
	"received": true, "prescribed": true, "administered": true, "reported": true,
	"treated": true, "diagnosed": true, "experienced": true, "developed": true,
	"returned": true, "reviewed": true, "rated": true, "shipped": true,
	"compare": true, "find": true, "show": true, "list": true, "give": true,
	"improved": true, "worsened": true, "caused": true, "reduced": true,
	"launched": true, "recorded": true, "totaled": true, "reached": true,
	"took": true, "visited": true, "enrolled": true, "completed": true,
}

var adjectiveLexicon = map[string]bool{
	"high": true, "low": true, "severe": true, "mild": true, "moderate": true,
	"average": true, "total": true, "common": true, "adverse": true,
	"positive": true, "negative": true, "effective": true, "satisfied": true,
	"poor": true, "good": true, "excellent": true, "last": true, "first": true,
	"new": true, "top": true, "best": true, "worst": true,
}

// Tag assigns a coarse part-of-speech tag to every token. The rules are
// deterministic: lexicon lookups first, then capitalization and suffix
// heuristics. Sentence-initial capitalized words are only proper nouns
// if they are not in any closed-class lexicon.
func Tag(tokens []Token) []TaggedToken {
	out := make([]TaggedToken, len(tokens))
	for i, t := range tokens {
		out[i] = TaggedToken{Token: t, POS: tagOne(t, i == 0)}
	}
	return out
}

func tagOne(t Token, sentenceInitial bool) POS {
	switch t.Kind {
	case TokenNumber:
		return POSNumber
	case TokenPunct, TokenSymbol:
		return POSPunct
	}
	lower := strings.ToLower(t.Text)
	switch {
	case determiners[lower]:
		return POSDeterminer
	case prepositions[lower]:
		return POSPreposition
	case conjunctions[lower]:
		return POSConjunction
	case pronouns[lower]:
		return POSPronoun
	case verbLexicon[lower]:
		return POSVerb
	case adjectiveLexicon[lower]:
		return POSAdjective
	}
	if isUpperInitial(t.Text) && !sentenceInitial {
		return POSProperNoun
	}
	if isUpperInitial(t.Text) && sentenceInitial {
		// Sentence-initial capitalized open-class word: proper noun only
		// if fully capitalized or mixed case beyond the first rune.
		if t.Text == strings.ToUpper(t.Text) && len(t.Text) > 1 {
			return POSProperNoun
		}
		return POSNoun
	}
	switch {
	case strings.HasSuffix(lower, "ing"), strings.HasSuffix(lower, "ize"),
		strings.HasSuffix(lower, "ise"), strings.HasSuffix(lower, "ify"):
		return POSVerb
	case strings.HasSuffix(lower, "ous"), strings.HasSuffix(lower, "ful"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "able"),
		strings.HasSuffix(lower, "al"), strings.HasSuffix(lower, "ic"):
		return POSAdjective
	}
	return POSNoun
}

func isUpperInitial(s string) bool {
	if s == "" {
		return false
	}
	c := s[0]
	return c >= 'A' && c <= 'Z'
}
