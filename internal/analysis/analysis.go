// Package analysis is the repo's static-analysis suite: a small,
// dependency-free re-implementation of the golang.org/x/tools
// go/analysis surface (Analyzer, Pass, Diagnostic) plus the four
// project-specific analyzers that turn this codebase's proven bug
// classes into mechanical findings:
//
//   - mapiter: a range over a map whose iteration order flows into an
//     ordered sink (append to a slice, writes into a builder) without
//     an intervening sort — the materializeCues bug class.
//   - lockguard: struct fields annotated "// guarded by <mu>" accessed
//     outside a <mu>.Lock/RLock critical section — the Ingest/Answer
//     race class.
//   - purepass: optimizer pass functions (and everything they call in
//     package) must be deterministic — no time.*, no math/rand, no
//     unordered map iteration feeding their output, no writes to
//     package-level state.
//   - epochkey: cache-shaped state (cache-named map fields or types)
//     must incorporate an epoch in its key or invalidation path, so a
//     new cache cannot silently serve stale results across ingests.
//
// The suite runs through cmd/unilint, standalone (`unilint ./...`) or
// as a `go vet -vettool` backend, and each analyzer is pinned by
// fixture packages under testdata/src (see RunFixture).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects the package in Pass and
// reports findings through Pass.Report; the returned error is reserved
// for analyzer malfunction, not findings.
type Analyzer struct {
	Name string // short name, reported as unilint/<Name>
	Doc  string // one-line description of the invariant enforced
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the vet-style "pos: analyzer: msg"
// form the unilint driver prints.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: unilint/%s: %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one type-checked unit ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// All returns the full analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, LockGuard, PurePass, EpochKey}
}

// ByName resolves an analyzer by its short name.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the analyzers over one package and returns the surviving
// findings: ignore directives (see ignore.go) filter matched findings
// and themselves become findings when undocumented or unmatched. The
// result is sorted by position, then analyzer, so output is
// deterministic regardless of analyzer order or map iteration inside
// the type checker.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Pkg,
			TypesInfo: pkg.Info,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s: %w", a.Name, err)
		}
	}
	diags = applyIgnores(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
