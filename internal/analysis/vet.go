package analysis

import (
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
)

// VetConfig is the subset of cmd/go's vet.cfg the driver needs when
// unilint runs as `go vet -vettool=unilint`. cmd/go hands the tool one
// JSON file per package: the file set to analyze plus compiled export
// data for every import, so no source re-typechecking is required.
type VetConfig struct {
	ID          string // package ID as cmd/go names it
	Compiler    string // "gc"
	Dir         string // package directory
	ImportPath  string
	GoFiles     []string          // absolute paths
	ImportMap   map[string]string // source import path -> canonical path
	PackageFile map[string]string // canonical path -> export data file

	VetxOnly   bool   // dependency visited for facts only; skip analysis
	VetxOutput string // facts output file the driver must create

	SucceedOnTypecheckFailure bool // e.g. under go vet -e
}

// ReadVetConfig parses a vet.cfg file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	return cfg, nil
}

// Load parses and type-checks the configured package against the
// export data cmd/go supplied, returning it as one analysis unit.
func (cfg *VetConfig) Load() (*Package, error) {
	fset := token.NewFileSet()
	files, err := parseFiles(fset, cfg.GoFiles)
	if err != nil {
		return nil, err
	}
	var imp types.Importer
	if cfg.Compiler == "gc" {
		// Resolve imports from the export data cmd/go listed.
		lookup := func(path string) (io.ReadCloser, error) {
			if canon, ok := cfg.ImportMap[path]; ok {
				path = canon
			}
			file, ok := cfg.PackageFile[path]
			if !ok {
				return nil, fmt.Errorf("no export data for %q", path)
			}
			return os.Open(file)
		}
		imp = importer.ForCompiler(fset, "gc", lookup)
	} else {
		// The source importer does not take a lookup function.
		imp = importer.ForCompiler(fset, "source", nil)
	}
	return check(fset, cfg.ImportPath, files, imp)
}

// WriteVetx writes the (empty — unilint exports no facts) vetx file
// cmd/go expects at cfg.VetxOutput.
func (cfg *VetConfig) WriteVetx() error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
}
