package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces the `// guarded by <mu>` field annotation: a
// struct field carrying that comment may only be read while a
// `<base>.<mu>.Lock()` or `.RLock()` call appears earlier in the same
// enclosing function (on the same base expression), and may only be
// written under the exclusive `.Lock()`. This is the Hybrid
// Ingest-vs-Answer race class from PR 1 made mechanical.
//
// Exemptions, matching the repo's conventions:
//   - functions whose name ends in "Locked" (caller holds the lock);
//   - accesses through a variable the function itself allocated with a
//     composite literal or new() — a struct not yet shared needs no
//     lock (constructors);
//   - composite-literal field initialization (not a field access);
//   - dotted annotations (`// guarded by owner.mu`) naming a mutex on
//     a *different* struct — the entry-in-a-locked-table shape, like a
//     breaker record inside the health tracker. The analyzer's
//     same-base model cannot see that the owning struct's methods hold
//     the lock, so cross-struct guards document the convention without
//     being checked; only sibling-field guards are enforced.
//
// The check is lexical, not flow-sensitive: an access after an Unlock
// in the same function is not caught. It exists to catch the common
// failure — a new method or code path that touches guarded state with
// no locking at all.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated `// guarded by <mu>` must be accessed under that mutex",
	Run:  runLockGuard,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+(?:\.\w+)*)`)

// guardedField records one annotated field.
type guardedField struct {
	structName string
	guard      string // sibling mutex field name
}

func runLockGuard(pass *Pass) error {
	guarded := collectGuarded(pass)
	if len(guarded) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			checkFunc(pass, fn, guarded)
		}
	}
	return nil
}

// collectGuarded finds every struct field annotated `// guarded by
// <mu>` (trailing comment or doc comment) and maps its field object to
// the annotation.
func collectGuarded(pass *Pass) map[types.Object]guardedField {
	out := make(map[types.Object]guardedField)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := guardAnnotation(field)
				if guard == "" || strings.Contains(guard, ".") {
					// Dotted guards name a mutex on another struct
					// (cross-struct convention, not checkable here).
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						out[obj] = guardedField{structName: ts.Name.Name, guard: guard}
					}
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockEvent is one `<base>.<mu>.Lock()` / `.RLock()` call.
type lockEvent struct {
	pos       token.Pos
	base      string // printed base expression ("h", "c", "pr.e")
	guard     string // mutex field name
	exclusive bool   // Lock, not RLock
}

func checkFunc(pass *Pass, fn *ast.FuncDecl, guarded map[types.Object]guardedField) {
	locks := collectLocks(pass, fn.Body)
	local := locallyAllocated(pass, fn.Body)

	// writes: every annotated selector that appears (possibly nested)
	// on the left of an assignment or under ++/--.
	writes := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				markSelectors(lhs, writes)
			}
		case *ast.IncDecStmt:
			markSelectors(n.X, writes)
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pass.TypesInfo.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal {
			return true
		}
		g, ok := guarded[selection.Obj()]
		if !ok {
			return true
		}
		base := types.ExprString(sel.X)
		if root := rootIdent(sel.X); root != nil && local[pass.TypesInfo.Uses[root]] {
			return true // allocated in this function, not yet shared
		}
		write := writes[sel]
		held := false
		for _, lk := range locks {
			if lk.pos < sel.Pos() && lk.base == base && lk.guard == g.guard && (lk.exclusive || !write) {
				held = true
				break
			}
		}
		if !held {
			verb := "read"
			need := base + "." + g.guard + ".RLock or .Lock"
			if write {
				verb = "written"
				need = base + "." + g.guard + ".Lock"
			}
			pass.Reportf(sel.Pos(), "%s.%s is guarded by %s but %s without a prior %s in this function",
				g.structName, selection.Obj().Name(), g.guard, verb, need)
		}
		return true
	})
}

// markSelectors marks every SelectorExpr within expr (the written
// chain) as a write target, so `h.IndexStats.Docs++` counts as a write
// of IndexStats.
func markSelectors(expr ast.Expr, writes map[*ast.SelectorExpr]bool) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok {
			writes[s] = true
		}
		return true
	})
}

// collectLocks finds every mutex Lock/RLock call in the body.
func collectLocks(pass *Pass, body *ast.BlockStmt) []lockEvent {
	var out []lockEvent
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		// The receiver chain must end in a field: <base>.<mu>.Lock().
		muSel, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		out = append(out, lockEvent{
			pos:       call.Pos(),
			base:      types.ExprString(muSel.X),
			guard:     muSel.Sel.Name,
			exclusive: sel.Sel.Name == "Lock",
		})
		return true
	})
	return out
}

// locallyAllocated returns the objects of variables the function binds
// to a fresh composite literal or new() call — structs that cannot yet
// be shared with another goroutine.
func locallyAllocated(pass *Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok || assign.Tok != token.DEFINE {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(assign.Rhs) {
				continue
			}
			if !freshAlloc(assign.Rhs[i]) {
				continue
			}
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

func freshAlloc(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := e.X.(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "new" {
			return true
		}
	}
	return false
}

// rootIdent returns the leftmost identifier of a selector chain, nil
// when the base is not a chain of selectors over an identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}
