package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Ignore directives.
//
// A finding is suppressed by a comment of the form
//
//	//lint:ignore unilint/<name> <written justification>
//
// on the flagged line or the line directly above it. The justification
// is mandatory: a bare directive is itself a finding (the driver fails
// on undocumented ignores), and so is a directive that matches nothing
// — dead suppressions rot into silent blind spots.

const ignorePrefix = "//lint:ignore "

type ignoreDirective struct {
	file     string
	line     int    // line the directive suppresses (its own line + 1 for standalone comments)
	analyzer string // short analyzer name ("" = malformed)
	reason   string
	pos      token.Pos // position of the comment, for reporting
	used     bool
}

// collectIgnores parses every //lint:ignore directive in the package.
// A directive on its own line suppresses the next line; a trailing
// directive suppresses its own line.
func collectIgnores(pkg *Package) []*ignoreDirective {
	var out []*ignoreDirective
	for _, f := range pkg.Files {
		// Lines that hold non-comment code, to tell trailing directives
		// from standalone ones.
		codeLines := make(map[int]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			// Comment groups attached as doc comments are walked like any
			// node; they are not code lines.
			switch n.(type) {
			case *ast.Comment, *ast.CommentGroup:
				return false
			}
			codeLines[pkg.Fset.Position(n.Pos()).Line] = true
			return true
		})
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &ignoreDirective{file: pos.Filename, line: pos.Line, pos: c.Pos()}
				if !codeLines[pos.Line] {
					d.line = pos.Line + 1
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				name, reason, _ := strings.Cut(rest, " ")
				d.analyzer = strings.TrimPrefix(name, "unilint/")
				d.reason = strings.TrimSpace(reason)
				out = append(out, d)
			}
		}
	}
	return out
}

// applyIgnores filters diags against the package's ignore directives
// and appends a finding for every directive that is undocumented or
// matched nothing.
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	directives := collectIgnores(pkg)
	if len(directives) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		suppressed := false
		for _, dir := range directives {
			if dir.reason == "" || dir.analyzer != d.Analyzer {
				continue
			}
			if dir.file == d.Pos.Filename && dir.line == d.Pos.Line {
				dir.used = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	for _, dir := range directives {
		switch {
		case dir.analyzer == "" || ByName(dir.analyzer) == nil:
			kept = append(kept, Diagnostic{
				Pos:      pkg.Fset.Position(dir.pos),
				Analyzer: "ignore",
				Message:  "malformed ignore directive: want //lint:ignore unilint/<analyzer> <reason>",
			})
		case dir.reason == "":
			kept = append(kept, Diagnostic{
				Pos:      pkg.Fset.Position(dir.pos),
				Analyzer: "ignore",
				Message:  "undocumented ignore directive: a written justification is required",
			})
		case !dir.used:
			kept = append(kept, Diagnostic{
				Pos:      pkg.Fset.Position(dir.pos),
				Analyzer: "ignore",
				Message:  "ignore directive matches no unilint/" + dir.analyzer + " finding on the next line; delete it",
			})
		}
	}
	return kept
}
