package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// EpochKey enforces the cache-invalidation convention from PR 2/5:
// every cache of derived query state must incorporate a data epoch in
// its key or invalidation path, so ingest can never leave stale plans,
// answers or views behind. A struct is cache-shaped when
//
//   - its name contains "cache" (answerCache, planCache), or
//   - it has a map field whose name contains "cache", or
//   - it has a map field whose element type (after pointer deref) is
//     plan-, answer- or table-valued (materialized views), or
//   - its name contains "health" or "breaker" and it has a map field
//     (per-backend resilience state, which must reset when the backend
//     registry changes or verdicts against departed backends leak
//     onto their replacements).
//
// A cache-shaped struct passes when an epoch is visible anywhere in
// its definition or methods: a field or identifier whose name contains
// "epoch" or "generation" (or is exactly "gen", the registry
// generation's conventional short name), or a call to an Epoch()
// method. New caches that skip the convention entirely are flagged at
// their type declaration.
var EpochKey = &Analyzer{
	Name: "epochkey",
	Doc:  "caches of plan/answer/view state must key or invalidate by a data epoch",
	Run:  runEpochKey,
}

func runEpochKey(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				reason := cacheShaped(pass, ts, st)
				if reason == "" {
					continue
				}
				if structMentionsEpoch(pass, ts, st) {
					continue
				}
				pass.Reportf(ts.Pos(), "%s is cache-shaped (%s) but neither its fields nor its methods reference a data epoch; key or invalidate it by an Epoch()-derived value",
					ts.Name.Name, reason)
			}
		}
	}
	return nil
}

// cacheShaped reports why the struct looks like a cache, or "".
func cacheShaped(pass *Pass, ts *ast.TypeSpec, st *ast.StructType) string {
	lower := strings.ToLower(ts.Name.Name)
	if strings.Contains(lower, "cache") {
		return "name contains \"cache\""
	}
	resilience := strings.Contains(lower, "health") || strings.Contains(lower, "breaker")
	for _, field := range st.Fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		m, isMap := tv.Type.Underlying().(*types.Map)
		if !isMap {
			continue
		}
		if resilience {
			name := "<embedded>"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			return "per-backend state map " + name + " in a health/breaker struct"
		}
		for _, name := range field.Names {
			if strings.Contains(strings.ToLower(name.Name), "cache") {
				return "map field " + name.Name
			}
		}
		if w := derivedStateElem(m.Elem()); w != "" {
			name := "<embedded>"
			if len(field.Names) > 0 {
				name = field.Names[0].Name
			}
			return "map field " + name + " holds " + w + " values"
		}
	}
	return ""
}

// derivedStateElem recognizes map element types that hold derived
// query state: plans, answers, or materialized tables/views — directly,
// or wrapped one struct level down (a registry entry bundling a
// materialization with its bookkeeping, like a rollup's retained
// state). Without the one-level descent, wrapping derived state in an
// entry struct silently exempted a registry from the epoch convention.
func derivedStateElem(t types.Type) string {
	name, ok := derivedStateName(t)
	if ok {
		return name
	}
	if name == "" {
		return ""
	}
	st, ok := t.Underlying().(*types.Struct)
	if p, isPtr := t.(*types.Pointer); isPtr {
		st, ok = p.Elem().Underlying().(*types.Struct)
	}
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if w, ok := derivedStateName(st.Field(i).Type()); ok {
			return name + " wrapping " + w
		}
	}
	return ""
}

// derivedStateName applies the derived-state naming rules to one type:
// the name (after pointer deref) contains "plan" or "answer", or is
// exactly "Table". The returned name is empty for unnamed types, and ok
// only when the rules match.
func derivedStateName(t types.Type) (string, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	name := named.Obj().Name()
	lower := strings.ToLower(name)
	if strings.Contains(lower, "plan") || strings.Contains(lower, "answer") || name == "Table" {
		return name, true
	}
	return name, false
}

// epochIdent reports whether an identifier names an epoch or a
// registry generation — the two versioning conventions the repo uses
// for invalidating derived state (data epochs for catalog/graph
// mutations, generations for backend-registry changes).
func epochIdent(name string) bool {
	lower := strings.ToLower(name)
	return strings.Contains(lower, "epoch") || strings.Contains(lower, "generation") || lower == "gen"
}

// structMentionsEpoch reports whether the struct's fields or any of
// its methods reference an epoch or generation.
func structMentionsEpoch(pass *Pass, ts *ast.TypeSpec, st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if epochIdent(name.Name) {
				return true
			}
		}
	}
	obj := pass.TypesInfo.Defs[ts.Name]
	if obj == nil {
		return false
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 {
				continue
			}
			if recvNamed(pass, fn) != obj {
				continue
			}
			found := false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && epochIdent(id.Name) {
					found = true
					return false
				}
				return !found
			})
			if found {
				return true
			}
		}
	}
	return false
}

// recvNamed resolves a method's receiver to the type-name object of
// its named type (through a pointer), nil when unresolvable.
func recvNamed(pass *Pass, fn *ast.FuncDecl) types.Object {
	tv, ok := pass.TypesInfo.Types[fn.Recv.List[0].Type]
	if !ok {
		return nil
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj()
	}
	return nil
}
