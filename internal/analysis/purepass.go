package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// PurePass keeps the optimizer's "deterministic, traced,
// result-preserving" contract (PR 3) honest: every function whose name
// ends in "Pass" — the repo's registration convention for optimizer
// rule passes (see logical.Optimize) — and every same-package function
// it transitively calls must be a pure function of its inputs:
//
//   - no calls into time.* (wall-clock dependence);
//   - no calls into math/rand or math/rand/v2 (nondeterminism);
//   - no range over a map, unless the loop only redistributes entries
//     into another map (order-insensitive) — order-sensitive traversal
//     must go through sorted keys;
//   - no writes to package-level variables (hidden state across runs).
//
// Calls that cross the package boundary are trusted: the contract is
// enforced where the passes live.
var PurePass = &Analyzer{
	Name: "purepass",
	Doc:  "optimizer pass functions must be deterministic and free of hidden state",
	Run:  runPurePass,
}

func runPurePass(pass *Pass) error {
	// Map function objects to their declarations for in-package
	// traversal.
	decls := make(map[types.Object]*ast.FuncDecl)
	var seeds []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
				decls[obj] = fn
			}
			if fn.Recv == nil && strings.HasSuffix(fn.Name.Name, "Pass") {
				seeds = append(seeds, fn)
			}
		}
	}

	visited := make(map[*ast.FuncDecl]bool)
	var inspect func(fn *ast.FuncDecl, root string)
	inspect = func(fn *ast.FuncDecl, root string) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		where := fn.Name.Name
		if where != root {
			where += " (reached from " + root + ")"
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callee := calleeObj(pass, n)
				if callee == nil {
					return true
				}
				// Only package-level functions count: methods such as
				// time.Time.Unix are pure accessors on a value the pass
				// was handed.
				if pkg := callee.Pkg(); pkg != nil && callee.Signature().Recv() == nil {
					switch pkg.Path() {
					case "time":
						pass.Reportf(n.Pos(), "optimizer pass %s calls time.%s; passes must not depend on the clock",
							where, callee.Name())
					case "math/rand", "math/rand/v2":
						pass.Reportf(n.Pos(), "optimizer pass %s calls %s.%s; passes must be deterministic",
							where, pkg.Name(), callee.Name())
					}
				}
				if callee.Pkg() == pass.Pkg {
					if d, ok := decls[callee]; ok {
						inspect(d, root)
					}
				}
			case *ast.RangeStmt:
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if mapToMapOnly(pass, n) {
					return true
				}
				if collectThenSorted(pass, fn.Body, n) {
					return true
				}
				pass.Reportf(n.Pos(), "optimizer pass %s ranges over a map in iteration order; traverse sorted keys or restrict the body to map-to-map redistribution",
					where)
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if obj := writtenPackageVar(pass, lhs); obj != nil {
						pass.Reportf(n.Pos(), "optimizer pass %s writes package-level state %s; passes must not carry state between runs",
							where, obj.Name())
					}
				}
			case *ast.IncDecStmt:
				if obj := writtenPackageVar(pass, n.X); obj != nil {
					pass.Reportf(n.Pos(), "optimizer pass %s writes package-level state %s; passes must not carry state between runs",
						where, obj.Name())
				}
			}
			return true
		})
	}
	for _, fn := range seeds {
		inspect(fn, fn.Name.Name)
	}
	return nil
}

// calleeObj resolves the called function's object, nil for builtins,
// conversions and indirect calls through variables.
func calleeObj(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// mapToMapOnly reports whether every statement of the loop body only
// assigns into map entries (or branches around such assignments) — the
// one map-range shape whose result cannot depend on iteration order as
// long as keys are distinct per iteration.
func mapToMapOnly(pass *Pass, rng *ast.RangeStmt) bool {
	var stmtsOK func(stmts []ast.Stmt) bool
	stmtsOK = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.AssignStmt:
				for _, lhs := range s.Lhs {
					idx, ok := lhs.(*ast.IndexExpr)
					if !ok {
						return false
					}
					tv, ok := pass.TypesInfo.Types[idx.X]
					if !ok {
						return false
					}
					if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
						return false
					}
				}
			case *ast.IfStmt:
				if s.Else != nil {
					return false
				}
				if !stmtsOK(s.Body.List) {
					return false
				}
			case *ast.BranchStmt:
				// continue/break cannot leak order
			default:
				return false
			}
		}
		return true
	}
	return stmtsOK(rng.Body.List)
}

// collectThenSorted reports whether the loop only appends into slices
// that are each passed to a sort.* / slices.* sorting call later in
// the same function body — the collect-keys-then-sort idiom, whose
// final order is independent of map iteration order.
func collectThenSorted(pass *Pass, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	var stmtsOK func(stmts []ast.Stmt) bool
	stmtsOK = func(stmts []ast.Stmt) bool {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ast.AssignStmt:
				for i, rhs := range s.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isBuiltinAppend(pass, call) || i >= len(s.Lhs) || !sameExpr(call.Args[0], s.Lhs[i]) {
						return false
					}
					if !sortedAfter(pass, body, rng.End(), types.ExprString(call.Args[0])) {
						return false
					}
				}
			case *ast.IfStmt:
				if s.Else != nil || !stmtsOK(s.Body.List) {
					return false
				}
			case *ast.BranchStmt:
				// continue/break cannot leak order
			default:
				return false
			}
		}
		return true
	}
	return stmtsOK(rng.Body.List)
}

// writtenPackageVar returns the package-level variable expr writes to,
// nil when the target is local or blank.
func writtenPackageVar(pass *Pass, expr ast.Expr) *types.Var {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || v.Pkg() != pass.Pkg {
		return nil
	}
	if v.Parent() != pass.Pkg.Scope() {
		return nil
	}
	return v
}
