// Package lockguard is the unilint/lockguard fixture: guarded fields
// accessed without their annotated mutex are flagged; locked,
// *Locked-suffixed, and constructor accesses stay clean.
package lockguard

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// inc holds the exclusive lock — clean.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// badRead touches the guarded field with no lock at all.
func (c *counter) badRead() int {
	return c.n // want `counter.n is guarded by mu but read without a prior c.mu.RLock or .Lock`
}

// badWrite mutates it lock-free.
func (c *counter) badWrite(v int) {
	c.n = v // want `counter.n is guarded by mu but written without a prior c.mu.Lock`
}

type gauge struct {
	mu  sync.RWMutex
	val float64 // guarded by mu
	hi  float64 // guarded by mu
}

// read under RLock — clean.
func (g *gauge) read() float64 {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.val
}

// writeUnderRLock takes only the read lock but writes — flagged as a
// write needing the exclusive lock.
func (g *gauge) writeUnderRLock(v float64) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	g.val = v // want `gauge.val is guarded by mu but written without a prior g.mu.Lock`
}

// set takes the exclusive lock and touches both fields — clean.
func (g *gauge) set(v float64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.val = v
	if v > g.hi {
		g.hi = v
	}
}

// resetLocked documents via its suffix that the caller holds mu —
// exempt.
func (g *gauge) resetLocked() {
	g.val = 0
	g.hi = 0
}

// newGauge initializes a struct it just allocated; nothing else can
// see it yet — exempt.
func newGauge(v float64) *gauge {
	g := &gauge{}
	g.val = v
	g.hi = v
	return g
}

// tableEntry's fields live inside lockedTable and are protected by
// the *owning* struct's mutex — a dotted cross-struct guard the
// analyzer documents but cannot check (the lock call's base is the
// table, not the entry), so entry accesses are never flagged.
type tableEntry struct {
	hits int // guarded by lockedTable.mu
}

type lockedTable struct {
	mu sync.Mutex
	m  map[string]*tableEntry
}

func (t *lockedTable) bump(k string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e := t.m[k]
	e.hits++
}
