// Package epochkey is the unilint/epochkey fixture: cache-shaped
// structs must reference a data epoch in their fields or methods.
package epochkey

import "sync"

type plan struct {
	fingerprint string
	cost        float64
}

// planCache is cache-shaped by name and has no epoch anywhere.
type planCache struct { // want `planCache is cache-shaped .* reference a data epoch`
	mu      sync.Mutex
	entries map[string]*plan
}

func (c *planCache) get(k string) *plan {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[k]
}

// viewSet holds plan-valued state under a non-cache name — still
// cache-shaped via its map element type.
type viewSet struct { // want `viewSet is cache-shaped .* reference a data epoch`
	views map[string]*plan
}

// answerCache carries an epoch field — clean.
type answerCache struct {
	mu      sync.Mutex
	epoch   uint64
	entries map[string]string
}

type source struct {
	epoch uint64
}

func (s *source) Epoch() uint64 { return s.epoch }

// freshViews has no epoch field but validates against the source
// epoch in a method — clean.
type freshViews struct {
	src   *source
	stamp uint64
	plans map[string]*plan
}

func (f *freshViews) get(k string) *plan {
	if f.src.Epoch() != f.stamp {
		f.plans = map[string]*plan{}
		f.stamp = f.src.Epoch()
		return nil
	}
	return f.plans[k]
}

// registry maps names to config strings — not derived query state,
// never flagged.
type registry struct {
	byName map[string]string
}

// rollupEntry wraps a materialized Table one struct level down — the
// registry-entry shape a rollup maintainer keeps.
type Table struct {
	rows [][]string
}

type rollupEntry struct {
	mat  *Table
	base string
}

// rollupRegistry holds entry-wrapped materializations and no epoch —
// the wrapped shape used to escape detection entirely.
type rollupRegistry struct { // want `rollupRegistry is cache-shaped .* reference a data epoch`
	entries map[string]*rollupEntry
}

// stampedRegistry is the same wrapped shape carrying the epoch its
// materializations were stamped at — clean.
type stampedRegistry struct {
	epoch   uint64
	entries map[string]*rollupEntry
}

// breakerState is per-backend circuit-breaker bookkeeping; it has no
// map, so the struct itself is not cache-shaped.
type breakerState struct {
	state    int
	failures int
}

// healthRegistry keeps per-backend breaker verdicts in a map with no
// generation tracking: when the backend registry changes, verdicts
// against departed backends would leak onto their replacements.
type healthRegistry struct { // want `healthRegistry is cache-shaped .* reference a data epoch`
	mu sync.Mutex
	m  map[string]*breakerState
}

// breakerTable carries the registry generation its verdicts were
// formed under — clean via the generation convention.
type breakerTable struct {
	mu  sync.Mutex
	gen uint64
	m   map[string]*breakerState
}

// healthView has no versioned field but forgives all health state
// when the registry generation moves, inside a method — clean.
type healthView struct {
	mu    sync.Mutex
	stamp uint64
	m     map[string]*breakerState
}

func (h *healthView) sync(generation uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if generation != h.stamp {
		h.m = map[string]*breakerState{}
		h.stamp = generation
	}
}
