// Package ignoredir exercises the //lint:ignore machinery. It is
// checked by TestIgnoreDirectives directly (no want comments: a want
// comment on a directive line would be parsed as its justification).
package ignoredir

import "fmt"

// justified: the finding on the next line is suppressed with a
// written reason and must not surface.
func justified(m map[string]int) []string {
	var out []string
	for k, v := range m {
		//lint:ignore unilint/mapiter order is re-established by the caller before use
		out = append(out, fmt.Sprintf("%s=%d", k, v))
	}
	return out
}

// undocumented: a bare directive suppresses nothing and is itself a
// finding, so the mapiter diagnostic survives alongside it.
func undocumented(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:ignore unilint/mapiter
		out = append(out, k)
	}
	return out
}

// unused: a justified directive that matches no finding is dead and
// flagged.
func unused(xs []string) int {
	//lint:ignore unilint/mapiter stale suppression left behind by a refactor
	return len(xs)
}

// misspelled: the analyzer name must resolve.
func misspelled(xs []string) int {
	//lint:ignore unilint/mapitre typo in the analyzer name
	return len(xs)
}

// docComment: a directive that is also a declaration's doc comment
// still suppresses the finding on the declaration line.
//
//lint:ignore unilint/epochkey entries map is rebuilt from scratch on every load; nothing survives an epoch
type scratchCache struct {
	entries map[string]string
}
