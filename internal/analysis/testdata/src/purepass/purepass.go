// Package purepass is the unilint/purepass fixture: functions named
// *Pass (the optimizer-pass convention) and their same-package callees
// must be deterministic and stateless.
package purepass

import (
	"math/rand"
	"sort"
	"time"
)

var hits int

// clockPass depends on the wall clock.
func clockPass(xs []int) []int {
	if time.Now().Unix()%2 == 0 { // want `calls time.Now; passes must not depend on the clock`
		return nil
	}
	return xs
}

// jitterPass injects randomness.
func jitterPass(xs []int) []int {
	i := rand.Intn(len(xs)) // want `calls rand.Intn; passes must be deterministic`
	return xs[:i]
}

// statPass leaks state across runs through a package variable.
func statPass(xs []int) []int {
	hits++ // want `writes package-level state hits`
	return xs
}

// orderPass lets map iteration order shape its output.
func orderPass(m map[string]int) []string {
	var out []string
	for k := range m { // want `ranges over a map in iteration order`
		out = append(out, k)
	}
	return out
}

// deepPass is clean itself but reaches tick() in the same package.
func deepPass(xs []int) []int {
	return tick(xs)
}

func tick(xs []int) []int {
	time.Sleep(0) // want `deepPass.*calls time.Sleep`
	return xs
}

// sortedPass uses the collect-keys-then-sort idiom — clean.
func sortedPass(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// copyPass redistributes map-to-map — order-insensitive, clean.
func copyPass(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		if v == 0 {
			continue
		}
		out[k] = v
	}
	return out
}

// slicePass ranges over a slice, not a map — clean.
func slicePass(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// ordinary is free to do anything: the convention only binds *Pass
// functions and their callees.
func ordinary() int64 {
	hits++
	return time.Now().UnixNano()
}
