// Package mapiter is the unilint/mapiter fixture: each seeded bug line
// carries a `// want` expectation; the fixed variants below it must
// stay clean.
package mapiter

import (
	"fmt"
	"sort"
	"strings"
)

// emitRows appends map-derived rows to a returned slice without a
// sort — the materializeCues bug shape.
func emitRows(m map[string]int) []string {
	var out []string
	for k, v := range m {
		out = append(out, fmt.Sprintf("%s=%d", k, v)) // want `append to out inside a map range`
	}
	return out
}

// explain writes EXPLAIN-style text in map iteration order; no later
// sort can fix an ordered text sink.
func explain(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `emits text in nondeterministic order`
	}
	return b.String()
}

// fprints emits rows over an io.Writer in map order.
func fprints(m map[string]int, b *strings.Builder) {
	for k, v := range m {
		fmt.Fprintf(b, "%s=%d\n", k, v) // want `emits text in nondeterministic order`
	}
}

// sortedKeys is the fixed variant: collect, then sort before use.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedEmit renders deterministically by iterating sorted keys.
func sortedEmit(m map[string]int) string {
	var b strings.Builder
	for _, k := range sortedKeys(m) {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// invert groups into per-key buckets — order-insensitive, clean.
func invert(m map[string]int, buckets map[int][]string) {
	for k, v := range m {
		buckets[v] = append(buckets[v], k)
	}
}

// viaSortSort passes the collected slice through sort.Sort — also
// clean.
type byLen []string

func (s byLen) Len() int           { return len(s) }
func (s byLen) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }
func (s byLen) Less(i, j int) bool { return len(s[i]) < len(s[j]) }

func viaSortSort(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Sort(byLen(out))
	return out
}

// viaSortSlice collects structs and orders them with sort.Slice —
// clean.
type pair struct {
	k string
	v int
}

func viaSortSlice(m map[string]int) []pair {
	out := make([]pair, 0, len(m))
	for k, v := range m {
		out = append(out, pair{k, v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].k < out[j].k })
	return out
}

// sortPairs is an in-package sorting helper; its name marks it as one.
func sortPairs(ps []pair) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].k < ps[j].k })
}

// viaHelper defers ordering to a named sort helper — clean.
func viaHelper(m map[string]int) []pair {
	var out []pair
	for k, v := range m {
		out = append(out, pair{k, v})
	}
	sortPairs(out)
	return out
}

// counts only totals values — no ordered sink, clean.
func counts(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
