package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loaders type-check with the standard library's source importer,
// so the suite works offline and without export-data toolchains; the
// one external invocation is `go list -json`, which resolves package
// patterns exactly as the build does.

// combinedImporter serves already-checked in-module packages first and
// falls back to compiling dependencies from source.
type combinedImporter struct {
	local map[string]*types.Package
	src   types.Importer
}

func (ci *combinedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ci.local[path]; ok {
		return p, nil
	}
	return ci.src.Import(path)
}

func newCombined(fset *token.FileSet) *combinedImporter {
	return &combinedImporter{
		local: make(map[string]*types.Package),
		src:   importer.ForCompiler(fset, "source", nil),
	}
}

// parseFiles parses the given files (absolute paths) with comments.
func parseFiles(fset *token.FileSet, files []string) ([]*ast.File, error) {
	out := make([]*ast.File, 0, len(files))
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

func check(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*Package, error) {
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	return &Package{Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// LoadDir type-checks a single directory of Go files as one package —
// the fixture loader. Files must only import the standard library.
func LoadDir(dir string) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	if len(matches) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(matches)
	fset := token.NewFileSet()
	files, err := parseFiles(fset, matches)
	if err != nil {
		return nil, err
	}
	return check(fset, files[0].Name.Name, files, newCombined(fset))
}

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	Dir          string
	ImportPath   string
	Name         string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Imports      []string
	TestImports  []string
	XTestImports []string
}

func goList(dir string, patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func abs(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = filepath.Join(dir, n)
	}
	return out
}

// LoadPatterns loads and type-checks every package matching the
// patterns (as `go list` resolves them, relative to dir) and returns
// one analysis unit per package: the package augmented with its
// in-package test files, plus a separate unit for any external _test
// package. Units come back sorted by import path.
func LoadPatterns(dir string, patterns ...string) ([]*Package, error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	inModule := make(map[string]*listPackage, len(pkgs))
	for _, p := range pkgs {
		inModule[p.ImportPath] = p
	}

	fset := token.NewFileSet()
	imp := newCombined(fset)

	// Pure packages first, in dependency order, so in-module imports
	// resolve from the local map instead of re-compiling from source.
	var order []*listPackage
	visiting := make(map[string]bool)
	done := make(map[string]bool)
	var visit func(p *listPackage) error
	visit = func(p *listPackage) error {
		if done[p.ImportPath] {
			return nil
		}
		if visiting[p.ImportPath] {
			return fmt.Errorf("import cycle through %s", p.ImportPath)
		}
		visiting[p.ImportPath] = true
		for _, dep := range p.Imports {
			if d, ok := inModule[dep]; ok {
				if err := visit(d); err != nil {
					return err
				}
			}
		}
		visiting[p.ImportPath] = false
		done[p.ImportPath] = true
		order = append(order, p)
		return nil
	}
	for _, p := range pkgs {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	for _, p := range order {
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("%s: cgo packages are not supported", p.ImportPath)
		}
		files, err := parseFiles(fset, abs(p.Dir, p.GoFiles))
		if err != nil {
			return nil, err
		}
		pure, err := check(fset, p.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		imp.local[p.ImportPath] = pure.Pkg
	}

	// Analysis units: package + in-package tests, then the external
	// test package against the augmented one.
	var units []*Package
	for _, p := range pkgs {
		files, err := parseFiles(fset, abs(p.Dir, append(append([]string(nil), p.GoFiles...), p.TestGoFiles...)))
		if err != nil {
			return nil, err
		}
		augImp := &combinedImporter{local: imp.local, src: imp.src}
		aug, err := check(fset, p.ImportPath, files, augImp)
		if err != nil {
			return nil, err
		}
		units = append(units, aug)

		if len(p.XTestGoFiles) > 0 {
			xfiles, err := parseFiles(fset, abs(p.Dir, p.XTestGoFiles))
			if err != nil {
				return nil, err
			}
			// The external test package sees the test-augmented package
			// under test, exactly as `go test` compiles it.
			xImp := &combinedImporter{local: map[string]*types.Package{p.ImportPath: aug.Pkg}, src: imp}
			xt, err := check(fset, p.ImportPath+"_test", xfiles, xImp)
			if err != nil {
				return nil, err
			}
			units = append(units, xt)
		}
	}
	return units, nil
}
