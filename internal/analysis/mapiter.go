package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapIter flags `range` loops over maps whose iteration order can leak
// into an ordered sink — the exact shape of the materializeCues bug
// (PR 1), where map-order edge insertion made results differ between
// runs. Two sinks are recognized:
//
//   - appending loop-derived values to a slice declared outside the
//     loop, unless that slice is later passed to a sort.* / slices.*
//     sort call in the same function (the collect-keys-then-sort idiom
//     stays legal);
//   - writing loop-derived values into an ordered text sink — a
//     strings.Builder, bytes.Buffer or io.Writer (EXPLAIN text, emitted
//     rows) — for which no after-the-fact sort can exist.
//
// Appends into map buckets (m2[k] = append(m2[k], …)) are not flagged:
// per-key grouping is order-insensitive as long as the bucket key comes
// from the loop variable.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration order must not flow into an ordered sink without a sort",
	Run:  runMapIter,
}

func runMapIter(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn.Body)
		}
	}
	return nil
}

func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		loopVars := rangeVarObjs(pass, rng)
		if len(loopVars) == 0 {
			return true
		}
		for _, sink := range findOrderedSinks(pass, rng, loopVars) {
			if sink.target != "" && sortedAfter(pass, body, rng.End(), sink.target) {
				continue
			}
			pass.Reportf(sink.pos, "%s", sink.message)
		}
		return true
	})
}

// rangeVarObjs returns the objects of the loop's key/value variables.
func rangeVarObjs(pass *Pass, rng *ast.RangeStmt) map[types.Object]bool {
	out := make(map[types.Object]bool, 2)
	for _, e := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true // `k = range m` over a pre-declared var
			}
		}
	}
	return out
}

type orderedSink struct {
	pos     token.Pos
	target  string // slice expression a later sort can redeem ("" = unsalvageable)
	message string
}

// findOrderedSinks scans the loop body for order-sensitive uses of the
// loop variables.
func findOrderedSinks(pass *Pass, rng *ast.RangeStmt, loopVars map[types.Object]bool) []orderedSink {
	var sinks []orderedSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || len(call.Args) < 2 || i >= len(n.Lhs) {
					continue
				}
				target := call.Args[0]
				if !sameExpr(target, n.Lhs[i]) {
					continue
				}
				// Appends into map buckets keyed by the loop variable are
				// per-key grouping — order-insensitive.
				if _, isIndex := target.(*ast.IndexExpr); isIndex {
					continue
				}
				if !declaredOutside(pass, target, rng) {
					continue
				}
				if !referencesAny(pass, call.Args[1:], loopVars) {
					continue
				}
				sinks = append(sinks, orderedSink{
					pos:    call.Pos(),
					target: types.ExprString(target),
					message: "append to " + types.ExprString(target) +
						" inside a map range makes its order nondeterministic; sort it before use or iterate sorted keys",
				})
			}
		case *ast.CallExpr:
			if name, ok := orderedWriteCall(pass, n); ok && referencesAny(pass, n.Args, loopVars) {
				sinks = append(sinks, orderedSink{
					pos: n.Pos(),
					message: name + " inside a map range emits text in nondeterministic order; " +
						"iterate sorted keys instead",
				})
			}
		}
		return true
	})
	return sinks
}

func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// orderedWriteCall recognizes method calls that emit into an ordered
// text sink: Write/WriteString/WriteByte/WriteRune on a
// strings.Builder or bytes.Buffer, and fmt.Fprint* regardless of
// writer.
func orderedWriteCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		if strings.HasPrefix(name, "Fprint") {
			return "fmt." + name, true
		}
		return "", false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
	default:
		return "", false
	}
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return "", false
	}
	t := tv.Type
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	qual := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if qual == "strings.Builder" || qual == "bytes.Buffer" {
		return qual + "." + name, true
	}
	return "", false
}

// declaredOutside reports whether the slice expression refers to
// storage that outlives the loop: a selector, or an identifier whose
// declaration precedes the range statement.
func declaredOutside(pass *Pass, target ast.Expr, rng *ast.RangeStmt) bool {
	switch t := target.(type) {
	case *ast.SelectorExpr:
		return true
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[t]
		if obj == nil {
			obj = pass.TypesInfo.Defs[t]
		}
		return obj != nil && obj.Pos() < rng.Pos()
	}
	return false
}

// referencesAny reports whether any expression mentions one of the
// loop-variable objects.
func referencesAny(pass *Pass, exprs []ast.Expr, objs map[types.Object]bool) bool {
	for _, e := range exprs {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
				found = true
				return false
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// sameExpr compares two expressions structurally by their printed form.
func sameExpr(a, b ast.Expr) bool {
	return types.ExprString(a) == types.ExprString(b)
}

// sortedAfter reports whether, after pos in the enclosing function
// body, target is passed (possibly wrapped, e.g. sort.Sort(byLen(s)))
// to a sorting call: a sort.* / slices.* function, or any function
// whose own name mentions "sort" (in-package helpers like
// sortEvidence).
func sortedAfter(pass *Pass, body *ast.BlockStmt, pos token.Pos, target string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		if !isSortingCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if exprContains(arg, target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isSortingCall(pass *Pass, call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		pkgID, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		pn, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			// Method call such as h.sortRows(out).
			return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return false
		}
		switch fun.Sel.Name {
		case "Strings", "Ints", "Float64s", "Slice", "SliceStable", "Stable":
			return true
		}
		return strings.Contains(strings.ToLower(fun.Sel.Name), "sort")
	case *ast.Ident:
		return strings.Contains(strings.ToLower(fun.Name), "sort")
	}
	return false
}

// exprContains reports whether expr or any sub-expression prints as
// target.
func exprContains(expr ast.Expr, target string) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && types.ExprString(e) == target {
			found = true
		}
		return !found
	})
	return found
}
