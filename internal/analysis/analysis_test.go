package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestFixtures runs every analyzer against its golden fixture: each
// seeded bug line must be reported (matching its `// want` pattern)
// and every fixed variant must stay silent.
func TestFixtures(t *testing.T) {
	for _, a := range All() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", a.Name)
			problems, err := CheckFixture(dir, a)
			if err != nil {
				t.Fatalf("CheckFixture(%s): %v", dir, err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestNegativeFixturesReport guards against the suite silently going
// blind: every fixture must actually contain seeded bugs that its
// analyzer reports before ignore filtering.
func TestNegativeFixturesReport(t *testing.T) {
	for _, a := range All() {
		dir := filepath.Join("testdata", "src", a.Name)
		pkg, err := LoadDir(dir)
		if err != nil {
			t.Fatalf("LoadDir(%s): %v", dir, err)
		}
		diags, err := Run(pkg, []*Analyzer{a})
		if err != nil {
			t.Fatalf("Run(%s): %v", a.Name, err)
		}
		if len(diags) == 0 {
			t.Errorf("%s: fixture produced no findings; the analyzer would pass a broken tree", a.Name)
		}
	}
}

// TestIgnoreDirectives checks the //lint:ignore machinery on its own
// fixture. Want comments cannot express these cases (a want comment on
// a directive line would become the directive's justification), so the
// findings are asserted directly.
func TestIgnoreDirectives(t *testing.T) {
	dir := filepath.Join("testdata", "src", "ignoredir")
	pkg, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", dir, err)
	}
	diags, err := Run(pkg, []*Analyzer{MapIter, EpochKey})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, fmt.Sprintf("%d %s %s", d.Pos.Line, d.Analyzer, d.Message))
	}
	assertOne := func(substr string) {
		t.Helper()
		n := 0
		for _, g := range got {
			if strings.Contains(g, substr) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("want exactly one finding containing %q, got %d in:\n%s", substr, n, strings.Join(got, "\n"))
		}
	}
	// The justified suppression must hold: no surviving mapiter finding
	// from the `justified` function (its append is on line 15).
	for _, g := range got {
		if strings.HasPrefix(g, "15 ") {
			t.Errorf("justified suppression did not hold: %s", g)
		}
	}
	// The bare directive leaves its finding alive and is itself flagged.
	assertOne("append to out inside a map range")
	assertOne("undocumented ignore directive")
	// Dead and misspelled directives are flagged.
	assertOne("matches no unilint/mapiter finding")
	assertOne("malformed ignore directive")
	if len(got) != 4 {
		t.Errorf("want exactly 4 findings, got %d:\n%s", len(got), strings.Join(got, "\n"))
	}
}
