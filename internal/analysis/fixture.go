package analysis

import (
	"fmt"
	"regexp"
	"strings"
)

// expectation is one `// want "regex"` comment in a fixture file.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

const wantPrefix = "// want "

// collectWants parses the fixture expectations: a comment of the form
//
//	// want `regex`     (or a double-quoted pattern)
//
// trailing a line asserts that exactly one finding whose message
// matches the pattern is reported on that line.
func collectWants(pkg *Package) ([]*expectation, error) {
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				idx := strings.Index(c.Text, wantPrefix)
				if idx < 0 {
					continue
				}
				raw := strings.TrimSpace(c.Text[idx+len(wantPrefix):])
				var pat string
				switch {
				case len(raw) >= 2 && raw[0] == '`':
					pat = strings.Trim(raw, "`")
				case len(raw) >= 2 && raw[0] == '"':
					pat = strings.Trim(raw, `"`)
				default:
					pos := pkg.Fset.Position(c.Pos())
					return nil, fmt.Errorf("%s: malformed want comment %q", pos, c.Text)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					return nil, fmt.Errorf("%s: bad want pattern: %v", pos, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
			}
		}
	}
	return out, nil
}

// CheckFixture loads the fixture package at dir, runs the analyzers,
// and returns one error string per mismatch between findings and the
// `// want` expectations — empty means the fixture is satisfied. Tests
// call this through RunFixture in analysistest_test.go.
func CheckFixture(dir string, analyzers ...*Analyzer) ([]string, error) {
	pkg, err := LoadDir(dir)
	if err != nil {
		return nil, err
	}
	diags, err := Run(pkg, analyzers)
	if err != nil {
		return nil, err
	}
	wants, err := collectWants(pkg)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, d := range diags {
		found := false
		for _, w := range wants {
			if w.matched || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if !w.pattern.MatchString(d.Message) {
				problems = append(problems, fmt.Sprintf("%s: message %q does not match want %q", d.Pos, d.Message, w.pattern))
			}
			w.matched = true
			found = true
			break
		}
		if !found {
			problems = append(problems, fmt.Sprintf("unexpected finding: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no finding matched want %q", w.file, w.line, w.pattern))
		}
	}
	return problems, nil
}
