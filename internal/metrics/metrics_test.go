package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestExactMatch(t *testing.T) {
	cases := []struct {
		pred, gold string
		want       bool
	}{
		{"20%", "20%", true},
		{"The answer is 20%.", "20%", true},
		{"20%, according to the records.", "20%", true},
		{"42 units", "42 units", true},
		{"42 units", "17 units", false},
		{"", "", true},
		{"something", "", false},
	}
	for _, tc := range cases {
		if got := ExactMatch(tc.pred, tc.gold); got != tc.want {
			t.Errorf("ExactMatch(%q, %q) = %v", tc.pred, tc.gold, got)
		}
	}
}

func TestTokenF1(t *testing.T) {
	if got := TokenF1("fever cough fatigue", "fever cough fatigue"); got != 1 {
		t.Errorf("identical F1 = %v", got)
	}
	if got := TokenF1("fever cough", "fever cough fatigue"); got <= 0.5 || got >= 1 {
		t.Errorf("partial F1 = %v", got)
	}
	if got := TokenF1("banana", "fever"); got != 0 {
		t.Errorf("disjoint F1 = %v", got)
	}
	if got := TokenF1("", ""); got != 1 {
		t.Errorf("empty F1 = %v", got)
	}
	if got := TokenF1("x", ""); got != 0 {
		t.Errorf("one-empty F1 = %v", got)
	}
}

func TestTokenF1SymmetryProperty(t *testing.T) {
	f := func(a, b string) bool {
		x, y := TokenF1(a, b), TokenF1(b, a)
		return math.Abs(x-y) < 1e-12 && x >= 0 && x <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBLEULite(t *testing.T) {
	perfect := BLEULite("sales rose twenty percent", "sales rose twenty percent")
	partial := BLEULite("sales rose", "sales rose twenty percent")
	disjoint := BLEULite("banana apple", "sales rose twenty percent")
	if perfect <= partial || partial <= disjoint {
		t.Errorf("ordering: perfect=%v partial=%v disjoint=%v", perfect, partial, disjoint)
	}
	if perfect > 1.0001 || disjoint < 0 {
		t.Errorf("bounds: %v %v", perfect, disjoint)
	}
}

func TestROUGEL(t *testing.T) {
	if got := ROUGEL("a b c d", "a b c d"); got != 1 {
		t.Errorf("identical rouge = %v", got)
	}
	sub := ROUGEL("a b d", "a b c d")
	if sub <= 0 || sub >= 1 {
		t.Errorf("subsequence rouge = %v", sub)
	}
	if got := ROUGEL("x y", "a b"); got != 0 {
		t.Errorf("disjoint rouge = %v", got)
	}
}

func TestLCS(t *testing.T) {
	if got := lcs([]string{"a", "b", "c"}, []string{"a", "c"}); got != 2 {
		t.Errorf("lcs = %d", got)
	}
	if got := lcs([]string{"a"}, nil); got != 0 {
		t.Errorf("lcs empty = %d", got)
	}
}

func TestRecallAtK(t *testing.T) {
	retrieved := []string{"a", "b", "c", "d"}
	if got := RecallAtK(retrieved, []string{"a", "c"}, 2); got != 0.5 {
		t.Errorf("recall@2 = %v", got)
	}
	if got := RecallAtK(retrieved, []string{"a", "c"}, 4); got != 1 {
		t.Errorf("recall@4 = %v", got)
	}
	if got := RecallAtK(retrieved, nil, 2); got != 1 {
		t.Errorf("empty gold recall = %v", got)
	}
	if got := RecallAtK(nil, []string{"a"}, 3); got != 0 {
		t.Errorf("empty retrieved recall = %v", got)
	}
}

func TestMRR(t *testing.T) {
	if got := MRR([]string{"x", "gold", "y"}, []string{"gold"}); got != 0.5 {
		t.Errorf("mrr = %v", got)
	}
	if got := MRR([]string{"gold"}, []string{"gold"}); got != 1 {
		t.Errorf("mrr first = %v", got)
	}
	if got := MRR([]string{"x"}, []string{"gold"}); got != 0 {
		t.Errorf("mrr absent = %v", got)
	}
}

func TestLatencies(t *testing.T) {
	var l Latencies
	if l.Percentile(50) != 0 || l.Mean() != 0 {
		t.Error("empty latencies nonzero")
	}
	for i := 1; i <= 100; i++ {
		l.Record(time.Duration(i) * time.Millisecond)
	}
	if l.N() != 100 {
		t.Errorf("n = %d", l.N())
	}
	p50 := l.Percentile(50)
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v", p50)
	}
	if l.Percentile(100) != 100*time.Millisecond {
		t.Errorf("p100 = %v", l.Percentile(100))
	}
	if l.Percentile(0) != time.Millisecond {
		t.Errorf("p0 = %v", l.Percentile(0))
	}
	mean := l.Mean()
	if mean < 50*time.Millisecond || mean > 51*time.Millisecond {
		t.Errorf("mean = %v", mean)
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(ds []uint16) bool {
		var l Latencies
		for _, d := range ds {
			l.Record(time.Duration(d) * time.Microsecond)
		}
		return l.Percentile(50) <= l.Percentile(95) && l.Percentile(95) <= l.Percentile(100)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResultTable(t *testing.T) {
	rt := NewResultTable("Table 1 — Index construction", "N", "build_ms", "bytes")
	rt.AddRow(100, 12.5, 4096)
	rt.AddRow(500, time.Millisecond*3, "n/a")
	s := rt.String()
	for _, want := range []string{"### Table 1", "| N | build_ms | bytes |", "| 100 | 12.500 | 4096 |", "3ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
	if rt.Rows() != 2 {
		t.Errorf("rows = %d", rt.Rows())
	}
}
