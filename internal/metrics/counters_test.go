package metrics

import (
	"sync"
	"testing"
)

func TestCounterSetBasics(t *testing.T) {
	c := NewCounterSet()
	c.Inc("scan.retry")
	c.Add("scan.retry", 2)
	c.Inc("breaker.open")
	if got := c.Get("scan.retry"); got != 3 {
		t.Errorf("scan.retry = %d, want 3", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing counter = %d, want 0", got)
	}
	want := "breaker.open=1 scan.retry=3"
	if got := c.String(); got != want {
		t.Errorf("String() = %q, want %q (sorted)", got, want)
	}
}

func TestCounterSetNilSafe(t *testing.T) {
	var c *CounterSet
	c.Inc("x") // must not panic
	if c.Get("x") != 0 || c.Snapshot() != nil {
		t.Error("nil CounterSet must read as empty")
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("hits")
			}
		}()
	}
	wg.Wait()
	if got := c.Get("hits"); got != 8000 {
		t.Errorf("hits = %d, want 8000", got)
	}
}
