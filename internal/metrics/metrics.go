// Package metrics implements the evaluation measures used across the
// experiment suite: answer accuracy (exact match, token F1, BLEU-lite,
// ROUGE-L), retrieval quality (recall@k, MRR), latency percentiles,
// and Markdown table rendering for benchmark output.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/slm"
)

// normalizeAnswer lower-cases, tokenizes, and strips stopwords and
// punctuation so "The answer is 20%." matches "20%".
func normalizeAnswer(s string) []string {
	var out []string
	for _, w := range slm.Words(slm.Tokenize(s)) {
		if slm.IsStopword(w) || answerNoise[w] {
			continue
		}
		out = append(out, w)
	}
	return out
}

var answerNoise = map[string]bool{
	"answer": true, "records": true, "record": true, "data": true,
	"based": true, "according": true, "indicate": true, "indicates": true,
}

// ExactMatch reports whether prediction and gold normalize to the same
// token sequence.
func ExactMatch(pred, gold string) bool {
	p, g := normalizeAnswer(pred), normalizeAnswer(gold)
	if len(p) != len(g) {
		return false
	}
	for i := range p {
		if p[i] != g[i] {
			return false
		}
	}
	return true
}

// TokenF1 returns the bag-of-tokens F1 between prediction and gold,
// the standard QA metric.
func TokenF1(pred, gold string) float64 {
	p, g := normalizeAnswer(pred), normalizeAnswer(gold)
	if len(p) == 0 && len(g) == 0 {
		return 1
	}
	if len(p) == 0 || len(g) == 0 {
		return 0
	}
	counts := map[string]int{}
	for _, w := range g {
		counts[w]++
	}
	overlap := 0
	for _, w := range p {
		if counts[w] > 0 {
			counts[w]--
			overlap++
		}
	}
	if overlap == 0 {
		return 0
	}
	prec := float64(overlap) / float64(len(p))
	rec := float64(overlap) / float64(len(g))
	return 2 * prec * rec / (prec + rec)
}

// BLEULite is a smoothed unigram+bigram BLEU with brevity penalty —
// enough signal for relative pipeline comparison without the full
// 4-gram machinery.
func BLEULite(pred, gold string) float64 {
	p, g := normalizeAnswer(pred), normalizeAnswer(gold)
	if len(p) == 0 || len(g) == 0 {
		if len(p) == len(g) {
			return 1
		}
		return 0
	}
	uni := ngramPrecision(p, g, 1)
	bi := ngramPrecision(p, g, 2)
	score := uni
	if len(p) > 1 && len(g) > 1 {
		// Geometric mean with +1 smoothing applied inside precision.
		score = sqrt(uni * bi)
	}
	// Brevity penalty.
	if len(p) < len(g) {
		score *= exp(1 - float64(len(g))/float64(len(p)))
	}
	return score
}

func ngramPrecision(p, g []string, n int) float64 {
	if len(p) < n {
		return 0
	}
	gold := map[string]int{}
	for i := 0; i+n <= len(g); i++ {
		gold[strings.Join(g[i:i+n], " ")]++
	}
	match, total := 1.0, 1.0 // +1 smoothing
	for i := 0; i+n <= len(p); i++ {
		total++
		key := strings.Join(p[i:i+n], " ")
		if gold[key] > 0 {
			gold[key]--
			match++
		}
	}
	return match / total
}

// ROUGEL returns the ROUGE-L F-measure (longest common subsequence).
func ROUGEL(pred, gold string) float64 {
	p, g := normalizeAnswer(pred), normalizeAnswer(gold)
	if len(p) == 0 || len(g) == 0 {
		if len(p) == len(g) {
			return 1
		}
		return 0
	}
	l := lcs(p, g)
	if l == 0 {
		return 0
	}
	prec := float64(l) / float64(len(p))
	rec := float64(l) / float64(len(g))
	return 2 * prec * rec / (prec + rec)
}

func lcs(a, b []string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for i := 1; i <= len(a); i++ {
		for j := 1; j <= len(b); j++ {
			if a[i-1] == b[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// RecallAtK returns the fraction of gold ids found in the first k
// retrieved ids. Empty gold yields 1 (nothing to find).
func RecallAtK(retrieved, gold []string, k int) float64 {
	if len(gold) == 0 {
		return 1
	}
	if k > len(retrieved) {
		k = len(retrieved)
	}
	set := map[string]bool{}
	for _, id := range retrieved[:k] {
		set[id] = true
	}
	hit := 0
	for _, g := range gold {
		if set[g] {
			hit++
		}
	}
	return float64(hit) / float64(len(gold))
}

// MRR returns the reciprocal rank of the first gold id in retrieved,
// or 0 when absent.
func MRR(retrieved, gold []string) float64 {
	set := map[string]bool{}
	for _, g := range gold {
		set[g] = true
	}
	for i, id := range retrieved {
		if set[id] {
			return 1 / float64(i+1)
		}
	}
	return 0
}

// --- latency recording ---

// Latencies accumulates durations and reports percentiles.
type Latencies struct {
	samples []time.Duration
}

// Record appends one observation.
func (l *Latencies) Record(d time.Duration) { l.samples = append(l.samples, d) }

// N returns the number of observations.
func (l *Latencies) N() int { return len(l.samples) }

// Percentile returns the p-th percentile (0 <= p <= 100) by
// nearest-rank; zero observations yield 0.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.samples...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p / 100 * float64(len(sorted)))
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// Mean returns the mean latency.
func (l *Latencies) Mean() time.Duration {
	if len(l.samples) == 0 {
		return 0
	}
	var total time.Duration
	for _, d := range l.samples {
		total += d
	}
	return total / time.Duration(len(l.samples))
}

// --- result table rendering ---

// ResultTable renders experiment rows as a Markdown table, the format
// EXPERIMENTS.md and cmd/benchrunner print.
type ResultTable struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewResultTable returns a table with the given title and headers.
func NewResultTable(title string, headers ...string) *ResultTable {
	return &ResultTable{Title: title, Headers: headers}
}

// AddRow appends one row; cells are formatted with %v.
func (t *ResultTable) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = v.Round(time.Microsecond).String()
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the rendered row count.
func (t *ResultTable) Rows() int { return len(t.rows) }

// Write renders the table as Markdown.
func (t *ResultTable) Write(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "\n### %s\n\n", t.Title); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(seps, " | ")); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// String renders the table to a string.
func (t *ResultTable) String() string {
	var b strings.Builder
	_ = t.Write(&b)
	return b.String()
}

func sqrt(x float64) float64 { return math.Sqrt(x) }
func exp(x float64) float64  { return math.Exp(x) }
