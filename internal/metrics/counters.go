package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// CounterSet is a named collection of monotonically increasing
// counters — the resilience layer's observability surface (retries
// taken, failovers routed, breakers opened). Counters are created on
// first Add and are safe for concurrent use; Snapshot renders them in
// sorted name order so any report built from one is deterministic.
type CounterSet struct {
	mu sync.RWMutex
	m  map[string]*atomic.Int64 // guarded by mu (values are atomic; the map itself needs the lock)
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{m: make(map[string]*atomic.Int64)}
}

// counter returns the named counter, creating it if needed.
func (c *CounterSet) counter(name string) *atomic.Int64 {
	c.mu.RLock()
	v := c.m[name]
	c.mu.RUnlock()
	if v != nil {
		return v
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if v = c.m[name]; v == nil {
		v = new(atomic.Int64)
		c.m[name] = v
	}
	return v
}

// Add increments the named counter by delta. A nil CounterSet is a
// valid no-op sink, so callers never need to guard instrumentation.
func (c *CounterSet) Add(name string, delta int64) {
	if c == nil {
		return
	}
	c.counter(name).Add(delta)
}

// Inc increments the named counter by one.
func (c *CounterSet) Inc(name string) { c.Add(name, 1) }

// Get returns the named counter's value (0 when absent or nil set).
func (c *CounterSet) Get(name string) int64 {
	if c == nil {
		return 0
	}
	c.mu.RLock()
	v := c.m[name]
	c.mu.RUnlock()
	if v == nil {
		return 0
	}
	return v.Load()
}

// Snapshot returns every counter as "name=value" lines in sorted name
// order — map iteration never leaks into output.
func (c *CounterSet) Snapshot() []string {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	names := make([]string, 0, len(c.m))
	for name := range c.m {
		names = append(names, name)
	}
	c.mu.RUnlock()
	sort.Strings(names)
	out := make([]string, len(names))
	for i, name := range names {
		out[i] = fmt.Sprintf("%s=%d", name, c.Get(name))
	}
	return out
}

// String renders the snapshot on one line.
func (c *CounterSet) String() string {
	return strings.Join(c.Snapshot(), " ")
}
