// Package unisem is the public API of the SLM-driven unified semantic
// query system (reproduction of "Simplifying Data Integration:
// SLM-Driven Systems for Unified Semantic Queries Across Heterogeneous
// Databases", Lin, ICDE 2025).
//
// A System ingests heterogeneous sources — unstructured text, JSON
// logs, XML configs, and relational CSV tables — builds the
// semantic-aware heterogeneous graph index, runs SLM-driven relational
// table generation over the text, and then answers natural-language
// questions through semantic operator synthesis with topology-guided
// evidence and semantic-entropy confidence scoring.
//
// Quickstart:
//
//	sys := unisem.New()
//	sys.Vocabulary(unisem.VocabProduct, "Product Alpha")
//	sys.AddDocument("notes", "r1", "Customer C-1 rated Product Alpha 5 stars.")
//	if err := sys.Build(); err != nil { ... }
//	ans, err := sys.Ask("What is the average rating of Product Alpha?")
package unisem

import (
	"errors"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/federate"
	"repro/internal/index"
	"repro/internal/slm"
	"repro/internal/store"
	"repro/internal/table"
)

// VocabKind classifies domain vocabulary registered with Vocabulary.
type VocabKind string

// Vocabulary kinds, mapping to the recognizer's entity types.
const (
	VocabProduct      VocabKind = "product"
	VocabDrug         VocabKind = "drug"
	VocabSideEffect   VocabKind = "side_effect"
	VocabManufacturer VocabKind = "manufacturer"
	VocabPerson       VocabKind = "person"
	VocabOrg          VocabKind = "org"
)

var vocabToEntity = map[VocabKind]slm.EntityType{
	VocabProduct:      slm.EntProduct,
	VocabDrug:         slm.EntDrug,
	VocabSideEffect:   slm.EntSideEffect,
	VocabManufacturer: slm.EntManufacturer,
	VocabPerson:       slm.EntPerson,
	VocabOrg:          slm.EntOrg,
}

// Evidence is one supporting item behind an answer.
type Evidence struct {
	ID    string  // record id
	Text  string  // content
	Score float64 // relevance
	Kind  string  // "chunk" or "row"
}

// Answer is the response to one question.
type Answer struct {
	Text     string        // the answer ("" when unanswerable)
	Plan     string        // synthesized operator pipeline, if any
	Explain  string        // federated EXPLAIN: logical → physical, est vs actual rows
	Evidence []Evidence    // supporting context
	Entropy  float64       // semantic entropy of sampled answers
	Flagged  bool          // true when entropy exceeds the flag threshold
	Latency  time.Duration // answer wall-clock time
	Err      error         // per-question failure; Ask also returns it
}

// Sentinel errors.
var (
	ErrNotBuilt     = errors.New("unisem: call Build before Ask")
	ErrAlreadyBuilt = errors.New("unisem: system already built")
	ErrNoAnswer     = core.ErrNoAnswer
)

// Options configures a System.
type Options struct {
	// EvidenceK is the number of evidence items returned per answer.
	EvidenceK int
	// EntropySamples is the number of answer samples used for
	// uncertainty scoring (the paper's M).
	EntropySamples int
	// FlagThreshold is the semantic-entropy level above which answers
	// are flagged for review.
	FlagThreshold float64
	// Seed drives all stochastic components.
	Seed uint64
	// Workers bounds build/ingest parallelism. Build fans out the
	// per-record SLM analysis and per-document table generation and
	// merges deterministically, so results are identical at any worker
	// count. 0 means all cores; 1 forces the sequential path.
	Workers int
	// AnswerCache enables an LRU answer cache of that many entries,
	// keyed by normalized question and invalidated on Ingest. 0
	// disables caching.
	AnswerCache int
	// QueryTimeout bounds each federated query execution: fragment
	// scans past the deadline are cancelled and the query fails. 0
	// means no deadline.
	QueryTimeout time.Duration
	// ScanRetries caps transient-failure retries per fragment scan,
	// with capped exponential backoff between attempts. 0 uses the
	// default budget; -1 disables retries.
	ScanRetries int
}

// DefaultOptions returns the standard configuration.
func DefaultOptions() Options {
	return Options{EvidenceK: 8, EntropySamples: 5, FlagThreshold: 0.7, Seed: 1}
}

// System is the unified query engine over heterogeneous sources.
// Configure (Vocabulary, Add*), then Build once, then Ask from any
// goroutine.
type System struct {
	opts     Options
	ner      *slm.NER
	texts    map[string]*store.TextStore
	jsons    map[string]*store.JSONStore
	xmls     map[string]*store.XMLStore
	catalog  *table.Catalog
	built    bool
	hybrid   *core.Hybrid
	backends []federate.Backend // registered before Build, attached at Build
}

// New returns an empty system with default options.
func New() *System { return NewWithOptions(DefaultOptions()) }

// NewWithOptions returns an empty system with the given options.
func NewWithOptions(opts Options) *System {
	if opts.EvidenceK <= 0 {
		opts.EvidenceK = 8
	}
	if opts.EntropySamples <= 0 {
		opts.EntropySamples = 5
	}
	if opts.FlagThreshold <= 0 {
		opts.FlagThreshold = 0.7
	}
	return &System{
		opts:    opts,
		ner:     slm.NewNER(),
		texts:   make(map[string]*store.TextStore),
		jsons:   make(map[string]*store.JSONStore),
		xmls:    make(map[string]*store.XMLStore),
		catalog: table.NewCatalog(),
	}
}

// Vocabulary registers domain phrases so the tagger recognizes them
// (e.g. product names, drug names). Unknown kinds register as generic
// entities.
func (s *System) Vocabulary(kind VocabKind, phrases ...string) {
	et, ok := vocabToEntity[kind]
	if !ok {
		et = slm.EntMisc
	}
	s.ner.AddGazetteer(et, phrases...)
}

// AddDocument adds one unstructured document to the named text source.
func (s *System) AddDocument(source, id, text string) error {
	if s.built {
		return ErrAlreadyBuilt
	}
	ts, ok := s.texts[source]
	if !ok {
		ts = store.NewTextStore(source)
		s.texts[source] = ts
	}
	ts.Add(id, text)
	return nil
}

// AddCSV loads a relational table from CSV (header row required; types
// inferred).
func (s *System) AddCSV(tableName string, r io.Reader) error {
	if s.built {
		return ErrAlreadyBuilt
	}
	t, err := table.ReadCSV(tableName, r, nil)
	if err != nil {
		return fmt.Errorf("unisem: %w", err)
	}
	s.catalog.Put(t)
	return nil
}

// AddJSONLines loads semi-structured records from JSON-lines input.
func (s *System) AddJSONLines(source string, r io.Reader) error {
	if s.built {
		return ErrAlreadyBuilt
	}
	js, ok := s.jsons[source]
	if !ok {
		js = store.NewJSONStore(source)
		s.jsons[source] = js
	}
	if err := js.LoadLines(r); err != nil {
		return fmt.Errorf("unisem: %w", err)
	}
	return nil
}

// AddXML loads semi-structured records from an XML document.
func (s *System) AddXML(source string, r io.Reader) error {
	if s.built {
		return ErrAlreadyBuilt
	}
	xs, ok := s.xmls[source]
	if !ok {
		xs = store.NewXMLStore(source)
		s.xmls[source] = xs
	}
	if err := xs.Load(r); err != nil {
		return fmt.Errorf("unisem: %w", err)
	}
	return nil
}

// Build indexes everything added so far: graph construction, entity
// tagging, cue inference, and relational table generation. It must be
// called exactly once, after all sources are added.
func (s *System) Build() error {
	if s.built {
		return ErrAlreadyBuilt
	}
	multi := store.NewMulti()
	if s.catalog.Len() > 0 {
		multi.Add(store.NewRelationalStore("db", s.catalog))
	}
	for _, ts := range s.texts {
		multi.Add(ts)
	}
	for _, js := range s.jsons {
		multi.Add(js)
	}
	for _, xs := range s.xmls {
		multi.Add(xs)
	}
	opts := core.DefaultHybridOptions()
	opts.EvidenceK = s.opts.EvidenceK
	opts.EntropyM = s.opts.EntropySamples
	opts.Seed = s.opts.Seed
	opts.Workers = s.opts.Workers
	opts.CacheSize = s.opts.AnswerCache
	opts.QueryTimeout = s.opts.QueryTimeout
	opts.ScanRetries = s.opts.ScanRetries
	h, err := core.NewHybrid(multi, s.ner, opts)
	if err != nil {
		return fmt.Errorf("unisem: build: %w", err)
	}
	for _, b := range s.backends {
		h.RegisterBackend(b)
	}
	s.hybrid = h
	s.built = true
	return nil
}

// RegisterBackend attaches a federated execution backend — an extra
// store the cost-based planner may route plan fragments to, alongside
// the built-in memory, SQL-dialect and graph-evidence backends. A
// backend registered before Build attaches during Build; after Build
// it joins the live system immediately (cached plans and answers are
// invalidated). Registering a backend with an existing name replaces
// it.
func (s *System) RegisterBackend(b federate.Backend) {
	if !s.built {
		s.backends = append(s.backends, b)
		return
	}
	s.hybrid.RegisterBackend(b)
}

// Metrics returns the federated resilience counters as "name=value"
// lines in sorted name order — scan retries taken, failovers routed,
// circuit-breaker transitions, stale-registry replans. Empty until a
// resilience event occurs; nil before Build.
func (s *System) Metrics() []string {
	if !s.built {
		return nil
	}
	return s.hybrid.Metrics()
}

// Backends lists the federated execution backends, sorted by name;
// nil before Build.
func (s *System) Backends() []string {
	if !s.built {
		return nil
	}
	return s.hybrid.Federation().Backends()
}

// Ask answers a natural-language question. The returned error is
// non-nil only when no answer could be produced at all. Ask is safe
// from any goroutine, including concurrently with Ingest.
func (s *System) Ask(question string) (Answer, error) {
	if !s.built {
		return Answer{}, ErrNotBuilt
	}
	ans := s.fromCore(s.hybrid.Answer(question))
	return ans, ans.Err
}

// QueryResult is the outcome of a SQL-entry query.
type QueryResult struct {
	Columns  []string   // result schema, in order
	Rows     [][]string // rendered cells, row-major
	Rendered string     // aligned ASCII preview of the result table
	Plan     string     // optimized logical plan (shared IR rendering)
	Explain  string     // federated EXPLAIN: logical → rules → physical
}

// Query executes one SQL SELECT statement through the same unified
// engine that answers natural-language questions: the statement
// compiles onto the shared logical-plan IR, runs the rule-based
// optimizer, and executes across the federated backends. A SQL query
// and the natural-language question it corresponds to share one
// cached physical plan (the cache keys on the canonical IR). Safe
// from any goroutine, including concurrently with Ingest.
func (s *System) Query(query string) (QueryResult, error) {
	if !s.built {
		return QueryResult{}, ErrNotBuilt
	}
	res, err := s.hybrid.Query(query)
	if err != nil {
		return QueryResult{}, err
	}
	out := QueryResult{
		Columns:  res.Table.Schema.Names(),
		Rendered: res.Table.String(),
		Plan:     res.Plan,
		Explain:  res.Explain,
	}
	for _, row := range res.Table.Rows {
		cells := make([]string, len(row))
		for i, v := range row {
			cells[i] = v.String()
		}
		out.Rows = append(out.Rows, cells)
	}
	return out, nil
}

// AskAll answers a batch of questions with up to parallel goroutines
// (0 means all cores) and returns the answers in question order, each
// carrying its own Err. Batch results are deterministic: answer i
// matches what the i-th sequential Ask would have produced. AskAll is
// safe concurrently with Ingest.
func (s *System) AskAll(questions []string, parallel int) ([]Answer, error) {
	if !s.built {
		return nil, ErrNotBuilt
	}
	raws := s.hybrid.AnswerAll(questions, parallel)
	out := make([]Answer, len(raws))
	for i, raw := range raws {
		out[i] = s.fromCore(raw)
	}
	return out, nil
}

// fromCore converts an internal answer to the public shape.
func (s *System) fromCore(raw core.Answer) Answer {
	ans := Answer{
		Text:    raw.Text,
		Plan:    raw.Plan,
		Explain: raw.Explain,
		Entropy: raw.Uncertainty.SemanticH,
		Flagged: raw.Uncertainty.Flagged(s.opts.FlagThreshold),
		Latency: raw.Latency,
		Err:     raw.Err,
	}
	for _, e := range raw.Evidence {
		ans.Evidence = append(ans.Evidence, Evidence{ID: e.NodeID, Text: e.Text, Score: e.Score, Kind: e.Kind})
	}
	return ans
}

// Stats summarizes the built index.
type Stats struct {
	Nodes, Edges     int
	Chunks, Entities int
	Cues, Rows       int
	ExtractedRows    int
	IndexBytes       int64
	BuildTime        time.Duration
}

// Stats returns index statistics; zero before Build. The snapshot is
// consistent even while Ingest calls are in flight.
func (s *System) Stats() Stats {
	if !s.built {
		return Stats{}
	}
	is, extracted := s.hybrid.Stats()
	return Stats{
		Nodes: is.Nodes, Edges: is.Edges,
		Chunks: is.Chunks, Entities: is.Entities,
		Cues: is.Cues, Rows: is.Rows,
		ExtractedRows: extracted,
		IndexBytes:    is.SizeBytes,
		BuildTime:     is.BuildTime,
	}
}

// CacheStats reports answer-cache hits, misses and current size; all
// zeros when the cache is disabled (Options.AnswerCache == 0).
func (s *System) CacheStats() (hits, misses int64, size int) {
	if !s.built {
		return 0, 0, 0
	}
	return s.hybrid.CacheStats()
}

// Tables lists the catalog tables available to semantic operators —
// native tables plus SLM-generated ones.
func (s *System) Tables() []string {
	if !s.built {
		return nil
	}
	return s.hybrid.Catalog().Names()
}

// Table returns a rendered preview of a catalog table.
func (s *System) Table(name string) (string, error) {
	if !s.built {
		return "", ErrNotBuilt
	}
	t, err := s.hybrid.Catalog().Get(name)
	if err != nil {
		return "", err
	}
	return t.String(), nil
}

// DescribeTable renders a catalog table's planner metadata — the
// per-column statistics and per-fragment zone maps behind cost
// estimates and scan pruning (uniquery's -stats flag). Useful for
// debugging why a fragment was or was not pruned.
func (s *System) DescribeTable(name string) (string, error) {
	if !s.built {
		return "", ErrNotBuilt
	}
	cat := s.hybrid.Catalog()
	if _, err := cat.Get(name); err != nil {
		return "", fmt.Errorf("%w (known tables: %s)", err, strings.Join(cat.Names(), ", "))
	}
	return cat.StatsOf(name).Describe() + "\n" + cat.ZonesOf(name).Describe(), nil
}

// AddRollup registers a materialized rollup on a *built* system: a
// grouped aggregation over a base table the optimizer transparently
// routes matching aggregate queries onto, maintained incrementally on
// append-only ingest and rebuilt deterministically on any other
// mutation. Routed results are bit-identical to unrouted execution.
func (s *System) AddRollup(def table.RollupDef) error {
	if !s.built {
		return ErrNotBuilt
	}
	return s.hybrid.AddRollup(def)
}

// Rollups lists the registered rollup definitions, sorted by name.
func (s *System) Rollups() []table.RollupDef {
	if !s.built {
		return nil
	}
	return s.hybrid.Rollups()
}

// DescribeRollup renders one registered rollup — its definition, the
// materialization's current row count, and the catalog epoch it was
// materialized at (uniquery's -stats flag). An unknown name lists the
// known rollups, like DescribeTable's unknown-table error.
func (s *System) DescribeRollup(name string) (string, error) {
	if !s.built {
		return "", ErrNotBuilt
	}
	out, err := s.hybrid.DescribeRollup(name)
	if err != nil {
		return "", fmt.Errorf("%w (known rollups: %s)", err,
			strings.Join(s.hybrid.Catalog().RollupNames(), ", "))
	}
	return out, nil
}

// Ingest adds one unstructured document to a *built* system without a
// rebuild: the graph index, extracted tables and retrieval priors all
// update incrementally (the paper's real-time analytics direction).
// Re-ingesting an existing document id is an error.
func (s *System) Ingest(source, id, text string) error {
	if !s.built {
		return ErrNotBuilt
	}
	return s.hybrid.Ingest(source, id, text)
}

// KnowledgeFormat selects the ExportKnowledge encoding.
type KnowledgeFormat string

// Knowledge export formats.
const (
	KnowledgeTSV  KnowledgeFormat = "tsv"
	KnowledgeJSON KnowledgeFormat = "json"
)

// ExportKnowledge writes the system's inferred knowledge facts —
// verb-mediated entity relations with source provenance — as TSV or
// JSON (the paper's "knowledge database construction" output).
func (s *System) ExportKnowledge(w io.Writer, format KnowledgeFormat) error {
	if !s.built {
		return ErrNotBuilt
	}
	triples := s.hybrid.Triples()
	switch format {
	case KnowledgeJSON:
		return index.WriteTriplesJSON(w, triples)
	case KnowledgeTSV, "":
		return index.WriteTriplesTSV(w, triples)
	default:
		return fmt.Errorf("unisem: unknown knowledge format %q", format)
	}
}

// ExplainEvidence returns the graph path connecting the question's
// entities to an evidence item, for provenance display.
func (s *System) ExplainEvidence(question, evidenceID string) []string {
	if !s.built {
		return nil
	}
	return s.hybrid.Retriever().ExplainPath(question, evidenceID)
}

// GraphComponents returns the sizes of the index's weakly connected
// components, largest first — a quick health check of cross-modal
// linking.
func (s *System) GraphComponents() []int {
	if !s.built {
		return nil
	}
	comps := s.hybrid.Graph().ConnectedComponents()
	out := make([]int, len(comps))
	for i, c := range comps {
		out[i] = len(c)
	}
	return out
}
