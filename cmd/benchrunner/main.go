// Command benchrunner regenerates every experiment table and figure
// series from DESIGN.md §4 and prints them as Markdown — the exact
// content EXPERIMENTS.md records.
//
// Usage:
//
//	benchrunner            # run all experiments
//	benchrunner -only t3   # run one: t1 t2 t3 f2 t4 f3 t5 t6 s1 s2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	only := flag.String("only", "", "run a single experiment: t1 t2 t3 f2 t4 f3 t5 t6")
	flag.Parse()

	runners := []struct {
		key string
		run func() *metrics.ResultTable
	}{
		{"t1", func() *metrics.ResultTable { return experiments.Table1IndexConstruction([]int{100, 400, 1600}) }},
		{"t2", experiments.Table2RetrievalQuality},
		{"t3", experiments.Table3MultiEntityQA},
		{"f2", func() *metrics.ResultTable { return experiments.Figure2LatencyScaling([]int{100, 400, 1600}) }},
		{"t4", func() *metrics.ResultTable { return experiments.Table4Extraction([]float64{0, 0.3, 0.6, 0.9}) }},
		{"f3", func() *metrics.ResultTable { return experiments.Figure3EntropyCalibration([]int{3, 5, 10}) }},
		{"t5", experiments.Table5Ablations},
		{"t6", experiments.Table6CostProfile},
		{"s1", func() *metrics.ResultTable { return experiments.TableS1ChunkSize([]int{32, 64, 128, 256}) }},
		{"s2", func() *metrics.ResultTable { return experiments.TableS2VectorIndex([]int{1, 2, 4, 8}) }},
	}

	matched := false
	start := time.Now()
	for _, r := range runners {
		if *only != "" && r.key != *only {
			continue
		}
		matched = true
		t0 := time.Now()
		tbl := r.run()
		if err := tbl.Write(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: write %s: %v\n", r.key, err)
			os.Exit(1)
		}
		fmt.Printf("\n_(%s regenerated in %v)_\n", r.key, time.Since(t0).Round(time.Millisecond))
	}
	if !matched {
		fmt.Fprintf(os.Stderr, "benchrunner: unknown experiment %q\n", *only)
		os.Exit(2)
	}
	fmt.Printf("\nAll requested experiments completed in %v.\n", time.Since(start).Round(time.Millisecond))
}
