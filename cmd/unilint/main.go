// Command unilint runs the repo's invariant analyzers (see
// internal/analysis) over Go packages. It works two ways:
//
//	unilint ./...                 # standalone, from the module root
//	go vet -vettool=$(which unilint) ./...
//
// Standalone mode resolves patterns with `go list`, type-checks from
// source, prints findings to stdout and exits 1 if there are any. As a
// vettool it speaks cmd/go's vet protocol: it answers -V=full and
// -flags, then analyzes one vet.cfg unit per invocation, reporting
// findings on stderr with exit status 2.
package main

import (
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

// version doubles as the vet cache key: cmd/go caches vet results
// under the tool's -V=full line, so bump it whenever analyzer behavior
// changes or stale cached verdicts may be served.
const version = "0.6.0"

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full", "--V=full":
			// ≥3 fields with f[1]=="version"; the whole line becomes the
			// tool's cache ID.
			fmt.Printf("unilint version %s\n", version)
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		case "-h", "-help", "--help":
			fmt.Fprintln(os.Stderr, "usage: unilint [packages]")
			for _, an := range analysis.All() {
				fmt.Fprintf(os.Stderr, "  unilint/%s: %s\n", an.Name, an.Doc)
			}
			os.Exit(2)
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vettool(args[0]))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args))
}

func standalone(patterns []string) int {
	units, err := analysis.LoadPatterns(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unilint:", err)
		return 1
	}
	found := false
	for _, u := range units {
		diags, err := analysis.Run(u, analysis.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "unilint:", err)
			return 1
		}
		for _, d := range diags {
			found = true
			fmt.Println(d)
		}
	}
	if found {
		return 1
	}
	return 0
}

func vettool(cfgPath string) int {
	cfg, err := analysis.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "unilint:", err)
		return 1
	}
	if cfg.VetxOnly {
		// Dependency loaded for facts only; unilint exports none.
		if err := cfg.WriteVetx(); err != nil {
			fmt.Fprintln(os.Stderr, "unilint:", err)
			return 1
		}
		return 0
	}
	unit, err := cfg.Load()
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "unilint:", err)
		return 1
	}
	diags, err := analysis.Run(unit, analysis.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "unilint:", err)
		return 1
	}
	if err := cfg.WriteVetx(); err != nil {
		fmt.Fprintln(os.Stderr, "unilint:", err)
		return 1
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		return 2
	}
	return 0
}
