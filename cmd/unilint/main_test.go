package main

import (
	"testing"

	"repro/internal/analysis"
)

// TestRepoIsClean runs the full suite over the module in-process, the
// same check CI's lint job performs: the tree must carry no unilint
// findings and no undocumented or dead ignore directives.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	units, err := analysis.LoadPatterns("../..", "./...")
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	if len(units) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, u := range units {
		diags, err := analysis.Run(u, analysis.All())
		if err != nil {
			t.Fatalf("run %s: %v", u.Pkg.Path(), err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}

// TestVetConfigRoundTrip exercises the -vettool path: a hand-built
// vet.cfg over a fixture package must produce the fixture's findings.
func TestVetConfigRoundTrip(t *testing.T) {
	cfg := &analysis.VetConfig{
		Compiler:   "source",
		ImportPath: "vetfixture",
		GoFiles:    []string{"../../internal/analysis/testdata/src/lockguard/lockguard.go"},
	}
	unit, err := cfg.Load()
	if err != nil {
		t.Fatalf("load vet unit: %v", err)
	}
	diags, err := analysis.Run(unit, analysis.All())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(diags) != 3 {
		t.Fatalf("want the fixture's 3 lockguard findings through the vet path, got %d: %v", len(diags), diags)
	}
}
