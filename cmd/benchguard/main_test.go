package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkSequentialIngest-8     	      18	  63000000 ns/op	       761.9 docs/s
BenchmarkParallelIngest         	      20	  55000000 ns/op	       870.0 docs/s
BenchmarkAnswerAll-8            	     100	   1265000 ns/op	       790.0 q/s
BenchmarkFederatedFilteredAggregate-8   	  500000	      2700 ns/op	         3.000 rows_scanned/op
BenchmarkEstimateAccuracy-8             	      30	   1500000 ns/op	         1.667 q_error_max	     17000 q/s
PASS
ok  	repro	4.2s
`

func TestParseBench(t *testing.T) {
	r, err := ParseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkSequentialIngest":                        63000000,
		"BenchmarkParallelIngest":                          55000000,
		"BenchmarkAnswerAll":                               1265000,
		"BenchmarkFederatedFilteredAggregate":              2700,
		"BenchmarkFederatedFilteredAggregate|rows_scanned": 3,
		"BenchmarkEstimateAccuracy":                        1500000,
		"BenchmarkEstimateAccuracy|q_error_max":            1.667,
	}
	if len(r) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(r), len(want), r)
	}
	for name, ns := range want {
		if r[name] != ns {
			t.Errorf("%s = %v, want %v", name, r[name], ns)
		}
	}
}

func TestCompareVerdicts(t *testing.T) {
	baseline := Report{"A": 100, "B": 100, "C": 100}
	current := Report{"A": 120, "B": 200, "D": 50}

	lines, ok := Compare(baseline, current, 0.25, false)
	if ok {
		t.Error("expected failure: B regressed and C is missing")
	}
	joined := strings.Join(lines, "\n")
	for _, want := range []string{"ok       A", "REGRESSED B", "MISSING  C", "NEW      D"} {
		if !strings.Contains(joined, want) {
			t.Errorf("verdicts missing %q:\n%s", want, joined)
		}
	}

	// Within tolerance passes.
	if _, ok := Compare(Report{"A": 100}, Report{"A": 124}, 0.25, false); !ok {
		t.Error("24%% slower should pass at 25%% tolerance")
	}
	if _, ok := Compare(Report{"A": 100}, Report{"A": 126}, 0.25, false); ok {
		t.Error("26%% slower should fail at 25%% tolerance")
	}
}

func TestCompareNormalized(t *testing.T) {
	baseline := Report{"A": 100, "B": 1000, "C": 10000}

	// A uniformly 2x-slower machine must pass under -normalize...
	slower := Report{"A": 200, "B": 2000, "C": 20000}
	if _, ok := Compare(baseline, slower, 0.25, true); !ok {
		t.Error("uniform 2x slowdown should pass with normalization")
	}
	// ...and fail without it.
	if _, ok := Compare(baseline, slower, 0.25, false); ok {
		t.Error("uniform 2x slowdown should fail without normalization")
	}

	// One benchmark regressing relative to its peers still trips the
	// gate even on a uniformly faster machine.
	skewed := Report{"A": 90, "B": 900, "C": 19000}
	lines, ok := Compare(baseline, skewed, 0.25, true)
	if ok {
		t.Errorf("relative regression of C should fail:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "REGRESSED C") {
		t.Errorf("C not flagged:\n%s", strings.Join(lines, "\n"))
	}
}

// TestCompareScannedRowsGateExactly pins the scanned-rows gate: the
// deterministic row counters compare raw (never normalized) with zero
// tolerance, so any pushdown regression fails even when every timing
// is comfortably inside tolerance.
func TestCompareScannedRowsGateExactly(t *testing.T) {
	baseline := Report{"A": 100, "B": 100, "A|rows_scanned": 3}

	// Equal rows pass; timings inside tolerance pass.
	if lines, ok := Compare(baseline, Report{"A": 110, "B": 105, "A|rows_scanned": 3}, 0.25, false); !ok {
		t.Errorf("unchanged scanned rows should pass:\n%s", strings.Join(lines, "\n"))
	}
	// One extra scanned row fails, even at 4% timing drift.
	lines, ok := Compare(baseline, Report{"A": 104, "B": 100, "A|rows_scanned": 4}, 0.25, false)
	if ok {
		t.Errorf("scanned-rows regression should fail:\n%s", strings.Join(lines, "\n"))
	}
	if !strings.Contains(strings.Join(lines, "\n"), "REGRESSED A|rows_scanned") {
		t.Errorf("rows entry not flagged:\n%s", strings.Join(lines, "\n"))
	}
	// Fewer scanned rows (a pushdown win) pass.
	if lines, ok := Compare(baseline, Report{"A": 100, "B": 100, "A|rows_scanned": 1}, 0.25, false); !ok {
		t.Errorf("scanned-rows improvement should pass:\n%s", strings.Join(lines, "\n"))
	}

	// Normalization must not launder a rows regression: a uniformly 2x
	// slower machine passes on timings but still fails on rows.
	cur := Report{"A": 200, "B": 200, "A|rows_scanned": 4}
	if lines, ok := Compare(baseline, cur, 0.25, true); ok {
		t.Errorf("normalized run must still gate rows exactly:\n%s", strings.Join(lines, "\n"))
	}
}

// TestCompareQErrorGateExactly pins the estimate-accuracy gate: the
// q_error_max metric is deterministic, so the smallest increase over
// the committed baseline fails, it is never normalized, and its
// decimals survive the report (a 1.667 → 2 rounding would hide real
// movement).
func TestCompareQErrorGateExactly(t *testing.T) {
	baseline := Report{"A": 100, "A|q_error_max": 1.667}

	if lines, ok := Compare(baseline, Report{"A": 110, "A|q_error_max": 1.667}, 0.25, false); !ok {
		t.Errorf("unchanged q-error should pass:\n%s", strings.Join(lines, "\n"))
	}
	lines, ok := Compare(baseline, Report{"A": 100, "A|q_error_max": 1.7}, 0.25, false)
	if ok {
		t.Errorf("q-error regression should fail:\n%s", strings.Join(lines, "\n"))
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "REGRESSED A|q_error_max") {
		t.Errorf("q-error entry not flagged:\n%s", joined)
	}
	if !strings.Contains(joined, "1.700") {
		t.Errorf("q-error decimals lost in the report:\n%s", joined)
	}
	// Tighter estimates pass; normalization never applies.
	if lines, ok := Compare(baseline, Report{"A": 200, "A|q_error_max": 1.5}, 0.25, true); !ok {
		t.Errorf("q-error improvement should pass under normalization:\n%s", strings.Join(lines, "\n"))
	}
}
