// Command benchguard turns `go test -bench` output into a committed
// JSON artifact and gates CI on benchmark regressions.
//
// Parse mode — read bench output, write ns/op per benchmark as JSON:
//
//	go test -run xxx -benchmem -bench . -benchtime 3x . | benchguard -parse - -out BENCH_ci.json
//
// Benchmarks that report a rows_scanned/op metric (the pushdown
// benchmarks) also emit a "<name>|rows_scanned" entry, benchmarks
// reporting q_error_max (the estimate-accuracy harness) emit a
// "<name>|q_error_max" entry, and -benchmem runs emit a
// "<name>|allocs_op" entry per benchmark (gated with the regular
// tolerance but never machine-normalized — allocation counts do not
// scale with machine speed).
//
// Compare mode — fail (exit 1) when any benchmark present in both
// files regressed by more than -tolerance (fraction, default 0.25):
//
//	benchguard -baseline BENCH_baseline.json -current BENCH_ci.json
//
// With -normalize, every current/baseline ns/op ratio is divided by
// the geometric mean ratio across all shared ns/op benchmarks before
// gating, so a uniformly slower (or faster) machine — a different CI
// runner generation than the one that produced the committed baseline
// — does not move any benchmark, while a single benchmark regressing
// relative to its peers still trips the gate.
//
// rows_scanned and q_error_max entries gate exactly: they are
// machine-independent (deterministic planner + corpus), so they are
// never normalized and any increase over the baseline fails — a
// pushdown, optimizer-rule or cost-model regression cannot hide
// behind timing tolerance.
//
// Benchmarks only in the baseline are reported as missing (fatal, so a
// silently deleted benchmark cannot hide a regression); benchmarks
// only in the current run are reported and pass — commit a refreshed
// baseline to start tracking them.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Report is the JSON artifact: benchmark name (suffix -N stripped) to
// nanoseconds per operation, plus "<name>|rows_scanned" entries for
// benchmarks reporting the rows_scanned/op metric.
type Report map[string]float64

// scannedSuffix and qErrorSuffix mark machine-independent entries
// (scanned rows, estimate-accuracy q-error), which compare exactly
// (no normalization, zero tolerance). allocsSuffix entries (-benchmem
// allocs/op) are machine-speed-independent too — they gate with the
// regular tolerance (allocation counts can shift slightly across Go
// releases) but are never normalized by the machine factor.
const (
	scannedSuffix = "|rows_scanned"
	qErrorSuffix  = "|q_error_max"
	allocsSuffix  = "|allocs_op"
)

// exactEntry reports whether the named entry gates exactly.
func exactEntry(name string) bool {
	return strings.HasSuffix(name, scannedSuffix) || strings.HasSuffix(name, qErrorSuffix)
}

func main() {
	parse := flag.String("parse", "", "bench output file to parse ('-' for stdin)")
	out := flag.String("out", "BENCH_ci.json", "JSON report path for -parse")
	baseline := flag.String("baseline", "", "baseline JSON for compare mode")
	current := flag.String("current", "", "current JSON for compare mode")
	tolerance := flag.Float64("tolerance", 0.25, "allowed ns/op regression fraction")
	normalize := flag.Bool("normalize", false, "divide ratios by their geometric mean (cancels uniform machine-speed differences)")
	flag.Parse()

	switch {
	case *parse != "":
		if err := runParse(*parse, *out); err != nil {
			fatal(err)
		}
	case *baseline != "" && *current != "":
		ok, err := runCompare(*baseline, *current, *tolerance, *normalize)
		if err != nil {
			fatal(err)
		}
		if !ok {
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "benchguard: need -parse FILE or -baseline FILE -current FILE")
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
	os.Exit(2)
}

func runParse(path, out string) error {
	var r io.Reader = os.Stdin
	if path != "-" {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	report, err := ParseBench(r)
	if err != nil {
		return err
	}
	if len(report) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", path)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(report), out)
	return nil
}

// ParseBench extracts ns/op per benchmark from `go test -bench` text
// output. Lines look like:
//
//	BenchmarkAnswerAll-8   100   1234567 ns/op   790 q/s
//
// The goroutine-count suffix is stripped so reports compare across
// machines.
func ParseBench(r io.Reader) (Report, error) {
	report := Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i++ {
			switch fields[i+1] {
			case "ns/op":
				ns, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad ns/op in %q: %w", sc.Text(), err)
				}
				report[name] = ns
			case "rows_scanned/op":
				rows, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad rows_scanned/op in %q: %w", sc.Text(), err)
				}
				report[name+scannedSuffix] = rows
			case "q_error_max":
				q, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad q_error_max in %q: %w", sc.Text(), err)
				}
				report[name+qErrorSuffix] = q
			case "allocs/op":
				a, err := strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("bad allocs/op in %q: %w", sc.Text(), err)
				}
				report[name+allocsSuffix] = a
			}
		}
	}
	return report, sc.Err()
}

func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

// Compare evaluates current against baseline, returning per-benchmark
// verdict lines and overall pass/fail. With normalize, each ratio is
// divided by the geometric mean ratio over shared benchmarks, so only
// relative movement gates.
func Compare(baseline, current Report, tolerance float64, normalize bool) (lines []string, ok bool) {
	ok = true
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names)

	scale := 1.0
	if normalize {
		logSum, n := 0.0, 0
		for _, name := range names {
			if exactEntry(name) || strings.HasSuffix(name, allocsSuffix) {
				continue // machine-independent: never normalized
			}
			if cur, found := current[name]; found && baseline[name] > 0 && cur > 0 {
				logSum += math.Log(cur / baseline[name])
				n++
			}
		}
		if n > 0 {
			scale = math.Exp(logSum / float64(n))
			lines = append(lines, fmt.Sprintf("normalizing by geomean machine factor %.3fx", scale))
		}
	}

	for _, name := range names {
		base := baseline[name]
		cur, found := current[name]
		exact := exactEntry(name)
		unit := "ns/op"
		switch {
		case strings.HasSuffix(name, scannedSuffix):
			unit = "rows"
		case strings.HasSuffix(name, qErrorSuffix):
			unit = "q"
		case strings.HasSuffix(name, allocsSuffix):
			unit = "allocs"
		}
		if !found {
			lines = append(lines, fmt.Sprintf("MISSING  %-44s baseline %s %s, absent from current run", name, fmtVal(name, base), unit))
			ok = false
			continue
		}
		// Exact entries are deterministic: compare raw values with zero
		// tolerance, so any pushdown or cost-model regression fails the
		// job. allocs/op keeps the tolerance (Go releases shift counts a
		// little) but never the machine-speed normalization.
		tol, adjusted := tolerance, cur/scale
		if exact {
			tol, adjusted = 0, cur
		} else if strings.HasSuffix(name, allocsSuffix) {
			adjusted = cur
		}
		delta := (adjusted - base) / base
		if base == 0 {
			// A zero baseline (the pruned-scan gate) regresses on any
			// increase and matches only another zero.
			delta = 0
			if adjusted > 0 {
				delta = math.Inf(1)
			}
		}
		verdict := "ok      "
		if delta > tol {
			verdict = "REGRESSED"
			ok = false
		}
		lines = append(lines, fmt.Sprintf("%s %-44s %12s -> %12s %s (%+.1f%%)", verdict, name, fmtVal(name, base), fmtVal(name, cur), unit, delta*100))
	}
	extra := make([]string, 0)
	for name := range current {
		if _, found := baseline[name]; !found {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		lines = append(lines, fmt.Sprintf("NEW      %-44s %12.0f ns/op (no baseline)", name, current[name]))
	}
	return lines, ok
}

// fmtVal renders an entry value: q-error metrics keep their decimals,
// everything else is a whole number.
func fmtVal(name string, v float64) string {
	if strings.HasSuffix(name, qErrorSuffix) {
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
	return strconv.FormatFloat(v, 'f', 0, 64)
}

func runCompare(basePath, curPath string, tolerance float64, normalize bool) (bool, error) {
	baseline, err := readReport(basePath)
	if err != nil {
		return false, err
	}
	current, err := readReport(curPath)
	if err != nil {
		return false, err
	}
	lines, ok := Compare(baseline, current, tolerance, normalize)
	for _, l := range lines {
		fmt.Println(l)
	}
	if !ok {
		fmt.Printf("benchguard: FAIL (tolerance %.0f%%)\n", tolerance*100)
	} else {
		fmt.Printf("benchguard: PASS (tolerance %.0f%%)\n", tolerance*100)
	}
	return ok, nil
}
