// Command docslint is the documentation gate CI's docs job runs. It
// checks, with the standard library only:
//
//   - every relative link in the repository's markdown files resolves
//     to an existing file or directory (external URLs, pure anchors
//     and links escaping the repository root are skipped — the badge
//     links are GitHub web paths, not files);
//   - every exported top-level identifier in the documented packages
//     (see docPackages) carries a doc comment, and each package has
//     package-level documentation.
//
// Usage: go run ./cmd/docslint [repo root, default "."]. Exits 1 with
// one finding per line when anything is missing, so a renamed file
// cannot silently break the architecture docs and a new exported API
// cannot land undocumented.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// docPackages are the packages whose exported surface the godoc gate
// covers: the execution-model core the architecture docs describe.
var docPackages = []string{
	"internal/logical",
	"internal/table",
	"internal/federate",
	"internal/par",
	"internal/analysis",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var findings []string
	findings = append(findings, checkMarkdownLinks(root)...)
	for _, pkg := range docPackages {
		findings = append(findings, checkPackageDocs(root, pkg)...)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "docslint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	fmt.Println("docslint: ok")
}

// mdLink matches inline markdown links and images: [text](target).
// Reference-style definitions are rare in this repo and not matched.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkMarkdownLinks walks every .md file under root (skipping .git
// and testdata) and verifies each relative link target exists.
func checkMarkdownLinks(root string) []string {
	var findings []string
	absRoot, err := filepath.Abs(root)
	if err != nil {
		return []string{fmt.Sprintf("docslint: %v", err)}
	}
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name == ".git" || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".md") || d.Name() == "SNIPPETS.md" {
			// SNIPPETS.md quotes exemplar code from other repositories;
			// its links point at files that exist only there.
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for _, m := range mdLink.FindAllStringSubmatch(string(data), -1) {
			target := m[1]
			if skipLink(target) {
				continue
			}
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
				if target == "" {
					continue // same-file anchor
				}
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			abs, err := filepath.Abs(resolved)
			if err != nil || !strings.HasPrefix(abs, absRoot+string(filepath.Separator)) {
				continue // escapes the repo (GitHub web paths like ../../actions/...)
			}
			if _, err := os.Stat(resolved); err != nil {
				findings = append(findings, fmt.Sprintf("%s: broken link %q", path, m[1]))
			}
		}
		return nil
	})
	if err != nil {
		findings = append(findings, fmt.Sprintf("docslint: walk: %v", err))
	}
	return findings
}

// exportedRecv reports whether a method's receiver names an exported
// type (unwrapping pointers and type parameters).
func exportedRecv(recv *ast.FieldList) bool {
	if recv == nil || len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.IndexExpr:
			t = x.X
		case *ast.Ident:
			return x.IsExported()
		default:
			return false
		}
	}
}

// skipLink reports link targets that are not repository files.
func skipLink(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}

// checkPackageDocs parses one package directory and reports exported
// top-level declarations without doc comments, plus a missing
// package-level comment.
func checkPackageDocs(root, pkg string) []string {
	dir := filepath.Join(root, filepath.FromSlash(pkg))
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", pkg, err)}
	}
	// ParseDir returns maps; iterate both levels in sorted order so
	// findings print deterministically run to run.
	var findings []string
	for _, pname := range sortedKeys(pkgs) {
		p := pkgs[pname]
		hasPkgDoc := false
		for _, fname := range sortedKeys(p.Files) {
			f := p.Files[fname]
			if f.Doc != nil {
				hasPkgDoc = true
			}
			findings = append(findings, checkFileDocs(fset, f)...)
		}
		if !hasPkgDoc {
			findings = append(findings, fmt.Sprintf("%s: package %s has no package-level doc comment", pkg, p.Name))
		}
	}
	return findings
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// checkFileDocs reports exported top-level declarations in one file
// that lack a doc comment. For grouped const/var/type declarations a
// doc comment on the group covers every spec in it.
func checkFileDocs(fset *token.FileSet, f *ast.File) []string {
	var findings []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		findings = append(findings, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, kind, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Name.IsExported() && d.Doc == nil {
				kind := "function"
				if d.Recv != nil {
					// Methods on unexported receivers are interface
					// implementations, not exported API surface.
					if !exportedRecv(d.Recv) {
						continue
					}
					kind = "method"
				}
				report(d.Pos(), kind, d.Name.Name)
			}
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(s.Pos(), strings.ToLower(d.Tok.String()), n.Name)
						}
					}
				}
			}
		}
	}
	return findings
}
