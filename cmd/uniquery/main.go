// Command uniquery is an interactive CLI over the unified semantic
// query system. It ingests a directory of mixed sources — *.txt
// documents, *.csv tables, *.jsonl logs, *.xml configs — or a built-in
// demo corpus, then answers questions with plans, evidence and
// entropy.
//
// Usage:
//
//	uniquery -demo ecommerce -q "Find the total revenue of all products in Q4"
//	uniquery -demo healthcare              # interactive loop on stdin
//	uniquery -dir ./data -vocab vocab.txt -q "..."
//	uniquery -demo ecommerce -batch questions.txt -parallel 8
//	uniquery -demo ecommerce -explain -q "..."   # show the federated physical plan
//	uniquery -demo ecommerce -sql "SELECT product, AVG(stars) AS result FROM ratings GROUP BY product"
//	uniquery -demo ecommerce -stats sales   # dump stats + fragment zone maps + registered rollups
//	uniquery -demo ecommerce -rollup "rev=sales:product:SUM(revenue),COUNT()" -rollup-stats rev
//
// The optional vocab file registers domain entities, one per line:
// "product: Product Alpha" / "drug: Drug A" / "side_effect: nausea".
// Batch mode reads one question per line (blank lines and #-comments
// skipped) and answers them concurrently via AskAll.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro"
	"repro/internal/store"
	"repro/internal/table"
	"repro/internal/workload"
)

// rollupSpecs collects the repeatable -rollup flag values.
type rollupSpecs []string

// String implements flag.Value.
func (r *rollupSpecs) String() string { return strings.Join(*r, "; ") }

// Set implements flag.Value.
func (r *rollupSpecs) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	dir := flag.String("dir", "", "directory of sources (*.txt, *.csv, *.jsonl, *.xml)")
	demo := flag.String("demo", "", "built-in demo corpus: ecommerce | healthcare | ops")
	vocab := flag.String("vocab", "", "vocabulary file: 'kind: phrase' per line")
	question := flag.String("q", "", "one-shot question (otherwise interactive)")
	sqlQuery := flag.String("sql", "", "one-shot SQL SELECT executed through the unified logical-plan engine")
	batch := flag.String("batch", "", "file of questions, one per line, answered concurrently")
	parallel := flag.Int("parallel", 0, "worker bound for build and batch answering (0 = all cores, 1 = sequential)")
	cacheSize := flag.Int("cache", 0, "LRU answer cache entries, invalidated on ingest (0 = off)")
	timeout := flag.Duration("timeout", 0, "federated query deadline; scans past it are cancelled (0 = none)")
	retries := flag.Int("retries", 0, "transient scan-failure retries per fragment, with capped backoff (0 = default, -1 = off)")
	showMetrics := flag.Bool("metrics", false, "print federated resilience counters (retries, failovers, breaker events) on exit")
	explain := flag.Bool("explain", false, "print the federated EXPLAIN (logical → physical plan, backend choice, est vs actual rows) with each answer")
	showTables := flag.Bool("tables", false, "list catalog tables after build")
	statsTable := flag.String("stats", "", "dump a table's per-column statistics and per-fragment zone maps (the planner's pruning inputs), plus the registered rollups")
	var rollups rollupSpecs
	flag.Var(&rollups, "rollup", `register a materialized rollup, "name=base:key1,key2:SUM(col),COUNT()" (repeatable); matching aggregate queries route onto it`)
	rollupStats := flag.String("rollup-stats", "", "describe one registered rollup (definition, row count, epoch)")
	saveDir := flag.String("save", "", "persist the built index+catalog to this directory")
	exportKB := flag.String("export-knowledge", "", "write inferred knowledge triples (TSV) to this file")
	flag.Parse()

	opts := unisem.DefaultOptions()
	opts.Workers = *parallel
	opts.AnswerCache = *cacheSize
	opts.QueryTimeout = *timeout
	opts.ScanRetries = *retries
	sys, err := buildSystem(*dir, *demo, *vocab, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "uniquery: %v\n", err)
		os.Exit(1)
	}
	if *showMetrics {
		defer func() {
			for _, line := range sys.Metrics() {
				fmt.Println("metric " + line)
			}
		}()
	}

	st := sys.Stats()
	fmt.Printf("index: %d nodes, %d edges, %d chunks, %d entities, %d cues, %d extracted rows (built in %v)\n",
		st.Nodes, st.Edges, st.Chunks, st.Entities, st.Cues, st.ExtractedRows, st.BuildTime)
	for _, spec := range rollups {
		def, err := parseRollupSpec(spec)
		if err == nil {
			err = sys.AddRollup(def)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "uniquery: rollup: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("rollup registered: %s\n", def)
	}
	if *showTables {
		fmt.Printf("tables: %s\n", strings.Join(sys.Tables(), ", "))
	}
	if *statsTable != "" {
		desc, err := describeStats(sys, *statsTable)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uniquery: stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(desc)
	}
	if *rollupStats != "" {
		desc, err := sys.DescribeRollup(*rollupStats)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uniquery: rollup-stats: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(desc)
	}
	if *saveDir != "" {
		if err := sys.Save(*saveDir); err != nil {
			fmt.Fprintf(os.Stderr, "uniquery: save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved index to %s\n", *saveDir)
	}
	if *exportKB != "" {
		f, err := os.Create(*exportKB)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uniquery: export: %v\n", err)
			os.Exit(1)
		}
		err = sys.ExportKnowledge(f, unisem.KnowledgeTSV)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "uniquery: export: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("exported knowledge triples to %s\n", *exportKB)
	}

	if *batch != "" {
		if err := answerBatch(sys, *batch, *parallel, *cacheSize > 0); err != nil {
			fmt.Fprintf(os.Stderr, "uniquery: batch: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *sqlQuery != "" {
		answerSQL(sys, *sqlQuery, *explain)
		return
	}
	if *question != "" {
		answer(sys, *question, *explain)
		return
	}

	fmt.Println(`type a question, or a SQL SELECT ("exit" to quit):`)
	scanner := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !scanner.Scan() {
			break
		}
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		if line == "exit" || line == "quit" {
			break
		}
		if word := strings.Fields(line)[0]; strings.EqualFold(word, "SELECT") {
			answerSQL(sys, line, *explain)
			continue
		}
		answer(sys, line, *explain)
	}
}

// answerSQL executes a SQL statement through the unified logical-plan
// engine and prints the result table (with the federated EXPLAIN when
// requested).
func answerSQL(sys *unisem.System, query string, explain bool) {
	res, err := sys.Query(query)
	if err != nil {
		fmt.Printf("query failed: %v\n", err)
		return
	}
	fmt.Print(res.Rendered)
	fmt.Printf("plan:   %s\n", res.Plan)
	if explain && res.Explain != "" {
		fmt.Println(res.Explain)
	}
}

func answer(sys *unisem.System, q string, explain bool) {
	ans, err := sys.Ask(q)
	if err != nil {
		fmt.Printf("no answer: %v\n", err)
		return
	}
	fmt.Printf("answer: %s\n", ans.Text)
	if ans.Plan != "" {
		fmt.Printf("plan:   %s\n", ans.Plan)
	}
	if explain && ans.Explain != "" {
		fmt.Println(ans.Explain)
	}
	fmt.Printf("entropy: %.3f", ans.Entropy)
	if ans.Flagged {
		fmt.Print("  [FLAGGED for review]")
	}
	fmt.Println()
	for i, e := range ans.Evidence {
		if i >= 3 {
			fmt.Printf("  ... and %d more evidence items\n", len(ans.Evidence)-3)
			break
		}
		text := e.Text
		if len(text) > 100 {
			text = text[:100] + "..."
		}
		fmt.Printf("  [%.2f] %s: %s\n", e.Score, e.ID, text)
	}
}

// answerBatch reads one question per line and answers them all through
// AskAll, reporting per-question results and batch throughput.
func answerBatch(sys *unisem.System, path string, parallel int, cacheOn bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var questions []string
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		questions = append(questions, line)
	}
	if err := scanner.Err(); err != nil {
		return err
	}
	start := time.Now()
	answers, err := sys.AskAll(questions, parallel)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	answered := 0
	for i, ans := range answers {
		if ans.Err != nil {
			fmt.Printf("[%d] %s\n    no answer: %v\n", i+1, questions[i], ans.Err)
			continue
		}
		answered++
		flag := ""
		if ans.Flagged {
			flag = "  [FLAGGED]"
		}
		fmt.Printf("[%d] %s\n    answer: %s  (entropy %.3f)%s\n", i+1, questions[i], ans.Text, ans.Entropy, flag)
	}
	qps := float64(len(questions)) / elapsed.Seconds()
	fmt.Printf("batch: %d/%d answered in %v (%.1f q/s)\n", answered, len(questions), elapsed, qps)
	if cacheOn {
		hits, misses, size := sys.CacheStats()
		fmt.Printf("cache: %d hits, %d misses, %d entries\n", hits, misses, size)
	}
	return nil
}

func buildSystem(dir, demo, vocabPath string, opts unisem.Options) (*unisem.System, error) {
	sys := unisem.NewWithOptions(opts)

	switch demo {
	case "ecommerce":
		return demoSystem(sys, workload.ECommerce(workload.DefaultECommerceOptions()))
	case "healthcare":
		return demoSystem(sys, workload.Healthcare(workload.DefaultHealthcareOptions()))
	case "ops":
		return demoSystem(sys, workload.Ops(workload.DefaultOpsOptions()))
	case "":
	default:
		return nil, fmt.Errorf("unknown demo %q", demo)
	}
	if dir == "" {
		return nil, fmt.Errorf("need -dir or -demo")
	}

	if vocabPath != "" {
		if err := loadVocab(sys, vocabPath); err != nil {
			return nil, err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, entry := range entries {
		if entry.IsDir() {
			continue
		}
		path := filepath.Join(dir, entry.Name())
		base := strings.TrimSuffix(entry.Name(), filepath.Ext(entry.Name()))
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		switch strings.ToLower(filepath.Ext(entry.Name())) {
		case ".txt":
			data, rerr := os.ReadFile(path)
			if rerr == nil {
				err = sys.AddDocument("docs", base, string(data))
			} else {
				err = rerr
			}
		case ".csv":
			err = sys.AddCSV(base, f)
		case ".jsonl", ".json":
			err = sys.AddJSONLines(base, f)
		case ".xml":
			err = sys.AddXML(base, f)
		}
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("load %s: %w", path, err)
		}
	}
	if err := sys.Build(); err != nil {
		return nil, err
	}
	return sys, nil
}

// demoSystem loads a generated corpus through the public API: text
// documents via AddDocument, relational tables via CSV round-trip,
// JSON records reconstructed from their flattened fields.
func demoSystem(sys *unisem.System, c *workload.Corpus) (*unisem.System, error) {
	for kind, phrases := range c.Vocab() {
		sys.Vocabulary(unisem.VocabKind(kind), phrases...)
	}
	for _, rec := range c.Sources.Records() {
		switch rec.Kind {
		case store.KindText:
			if err := sys.AddDocument(rec.Source, rec.ID, rec.Text); err != nil {
				return nil, err
			}
		case store.KindJSON:
			obj := map[string]interface{}{}
			for k, v := range rec.Fields {
				obj[k] = v
			}
			data, err := json.Marshal(obj)
			if err != nil {
				return nil, err
			}
			if err := sys.AddJSONLines(rec.Source, bytes.NewReader(data)); err != nil {
				return nil, err
			}
		}
	}
	cat := c.NativeCatalog()
	for _, name := range cat.Names() {
		tbl, err := cat.Get(name)
		if err != nil {
			continue
		}
		var buf bytes.Buffer
		if err := tbl.WriteCSV(&buf); err != nil {
			return nil, err
		}
		if err := sys.AddCSV(name, &buf); err != nil {
			return nil, err
		}
	}
	if err := sys.Build(); err != nil {
		return nil, err
	}
	return sys, nil
}

// parseRollupSpec parses the -rollup flag's compact definition form
// "name=base:key1,key2:SUM(col),COUNT()": a rollup name, its base
// table, the group-key columns, and the aggregate list (COUNT may omit
// its column).
func parseRollupSpec(spec string) (table.RollupDef, error) {
	name, rest, ok := strings.Cut(spec, "=")
	if !ok {
		return table.RollupDef{}, fmt.Errorf("rollup spec %q: want name=base:keys:aggs", spec)
	}
	parts := strings.SplitN(rest, ":", 3)
	if len(parts) != 3 {
		return table.RollupDef{}, fmt.Errorf("rollup spec %q: want name=base:keys:aggs", spec)
	}
	def := table.RollupDef{Name: strings.TrimSpace(name), Base: strings.TrimSpace(parts[0])}
	for _, k := range strings.Split(parts[1], ",") {
		if k = strings.TrimSpace(k); k != "" {
			def.GroupBy = append(def.GroupBy, k)
		}
	}
	for _, raw := range strings.Split(parts[2], ",") {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		fnName, colPart, ok := strings.Cut(raw, "(")
		if !ok || !strings.HasSuffix(colPart, ")") {
			return table.RollupDef{}, fmt.Errorf("rollup spec %q: aggregate %q: want FUNC(col)", spec, raw)
		}
		fn, err := table.ParseAggFunc(fnName)
		if err != nil {
			return table.RollupDef{}, fmt.Errorf("rollup spec %q: %w", spec, err)
		}
		col := strings.TrimSpace(strings.TrimSuffix(colPart, ")"))
		def.Aggs = append(def.Aggs, table.Agg{Func: fn, Col: col})
	}
	return def, nil
}

// describeStats renders the -stats report: the named table's planner
// metadata (when the name is a rollup, its definition line leads), then
// every registered rollup with its definition, materialized row count
// and epoch.
func describeStats(sys *unisem.System, name string) (string, error) {
	var b strings.Builder
	if line, err := sys.DescribeRollup(name); err == nil {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	desc, err := sys.DescribeTable(name)
	if err != nil {
		return "", err
	}
	b.WriteString(desc)
	b.WriteString("\nrollups:")
	defs := sys.Rollups()
	if len(defs) == 0 {
		b.WriteString(" none")
	}
	for _, d := range defs {
		line, err := sys.DescribeRollup(d.Name)
		if err != nil {
			return "", err
		}
		b.WriteString("\n  " + line)
	}
	return b.String(), nil
}

func loadVocab(sys *unisem.System, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	scanner := bufio.NewScanner(f)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.SplitN(line, ":", 2)
		if len(parts) != 2 {
			continue
		}
		sys.Vocabulary(unisem.VocabKind(strings.TrimSpace(parts[0])), strings.TrimSpace(parts[1]))
	}
	return scanner.Err()
}
