package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/table"
)

// writeFixture creates a mixed-source data directory.
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"reviews.txt": "Customer C-1 rated Product Alpha 5 stars. Customer C-2 rated Product Alpha 3 stars.",
		"sales.csv":   "product,quarter,revenue\nProduct Alpha,Q2,1200\nProduct Beta,Q2,800\n",
		"events.jsonl": `{"id":"e1","product":"Product Alpha","event":"return"}
{"id":"e2","product":"Product Beta","event":"order"}`,
		"conf.xml": `<cfg><svc id="s1"><host>db1</host></svc></cfg>`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vocab := filepath.Join(dir, "vocab.txt")
	if err := os.WriteFile(vocab, []byte("# demo vocab\nproduct: Product Alpha\nproduct: Product Beta\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestBuildSystemFromDir(t *testing.T) {
	dir := writeFixture(t)
	sys, err := buildSystem(dir, "", filepath.Join(dir, "vocab.txt"), unisem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Ask("What was the revenue of Product Alpha in Q2?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "1200" {
		t.Errorf("answer = %q (plan %s)", ans.Text, ans.Plan)
	}
	ans, err = sys.Ask("What is the average rating of Product Alpha?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "4" {
		t.Errorf("rating = %q", ans.Text)
	}
}

func TestBuildSystemDemos(t *testing.T) {
	for _, demo := range []string{"ecommerce", "healthcare", "ops"} {
		sys, err := buildSystem("", demo, "", unisem.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", demo, err)
		}
		if sys.Stats().Nodes == 0 {
			t.Errorf("%s: empty index", demo)
		}
	}
}

func TestBuildSystemErrors(t *testing.T) {
	if _, err := buildSystem("", "", "", unisem.DefaultOptions()); err == nil {
		t.Error("no source accepted")
	}
	if _, err := buildSystem("", "nonsense", "", unisem.DefaultOptions()); err == nil {
		t.Error("unknown demo accepted")
	}
	if _, err := buildSystem("/nonexistent-dir-xyz", "", "", unisem.DefaultOptions()); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestLoadVocabSkipsComments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.txt")
	os.WriteFile(path, []byte("# comment\n\nbadline\nproduct: Widget\n"), 0o644)
	sys, err := buildSystem(writeFixture(t), "", path, unisem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
}

func TestParseRollupSpec(t *testing.T) {
	def, err := parseRollupSpec("rev=sales:product,quarter:SUM(revenue),COUNT()")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != "rev" || def.Base != "sales" {
		t.Errorf("def = %+v", def)
	}
	if len(def.GroupBy) != 2 || def.GroupBy[0] != "product" || def.GroupBy[1] != "quarter" {
		t.Errorf("GroupBy = %v", def.GroupBy)
	}
	if len(def.Aggs) != 2 ||
		def.Aggs[0].Func != table.AggSum || def.Aggs[0].Col != "revenue" ||
		def.Aggs[1].Func != table.AggCount || def.Aggs[1].Col != "" {
		t.Errorf("Aggs = %v", def.Aggs)
	}

	for _, spec := range []string{
		"no-equals-sign",               // missing name=
		"rev=sales:product",            // too few ':' segments
		"rev=sales:product:revenue",    // aggregate without FUNC(col)
		"rev=sales:product:SUM(",       // unterminated aggregate
		"rev=sales:product:MEDIAN(x)",  // unknown aggregate function
		"rev=sales:product:SUM(x),bad", // one good aggregate, one malformed
	} {
		if _, err := parseRollupSpec(spec); err == nil {
			t.Errorf("parseRollupSpec(%q) did not error", spec)
		}
	}
}

func TestDescribeStatsListsRollups(t *testing.T) {
	sys, err := buildSystem("", "ecommerce", "", unisem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Before any registration the rollups section says so explicitly.
	out, err := describeStats(sys, "sales")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "rollups: none") {
		t.Errorf("-stats without rollups missing 'rollups: none':\n%s", out)
	}

	def, err := parseRollupSpec("rev=sales:product:SUM(revenue),COUNT()")
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddRollup(def); err != nil {
		t.Fatal(err)
	}
	out, err = describeStats(sys, "sales")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"stats: table sales",
		"\nrollups:",
		"rollup rev = SELECT product, SUM(revenue), COUNT() FROM sales GROUP BY product",
		"rows=", "epoch=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-stats output missing %q:\n%s", want, out)
		}
	}
	// Naming the rollup itself leads with its definition line before the
	// materialization's table stats.
	out, err = describeStats(sys, "rev")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "rollup rev = SELECT") {
		t.Errorf("-stats of a rollup does not lead with its definition:\n%s", out)
	}
	if !strings.Contains(out, "stats: table rev") {
		t.Errorf("-stats of a rollup missing its table stats:\n%s", out)
	}
}
