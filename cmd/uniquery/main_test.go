package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

// writeFixture creates a mixed-source data directory.
func writeFixture(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"reviews.txt": "Customer C-1 rated Product Alpha 5 stars. Customer C-2 rated Product Alpha 3 stars.",
		"sales.csv":   "product,quarter,revenue\nProduct Alpha,Q2,1200\nProduct Beta,Q2,800\n",
		"events.jsonl": `{"id":"e1","product":"Product Alpha","event":"return"}
{"id":"e2","product":"Product Beta","event":"order"}`,
		"conf.xml": `<cfg><svc id="s1"><host>db1</host></svc></cfg>`,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	vocab := filepath.Join(dir, "vocab.txt")
	if err := os.WriteFile(vocab, []byte("# demo vocab\nproduct: Product Alpha\nproduct: Product Beta\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestBuildSystemFromDir(t *testing.T) {
	dir := writeFixture(t)
	sys, err := buildSystem(dir, "", filepath.Join(dir, "vocab.txt"), unisem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Ask("What was the revenue of Product Alpha in Q2?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "1200" {
		t.Errorf("answer = %q (plan %s)", ans.Text, ans.Plan)
	}
	ans, err = sys.Ask("What is the average rating of Product Alpha?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "4" {
		t.Errorf("rating = %q", ans.Text)
	}
}

func TestBuildSystemDemos(t *testing.T) {
	for _, demo := range []string{"ecommerce", "healthcare", "ops"} {
		sys, err := buildSystem("", demo, "", unisem.DefaultOptions())
		if err != nil {
			t.Fatalf("%s: %v", demo, err)
		}
		if sys.Stats().Nodes == 0 {
			t.Errorf("%s: empty index", demo)
		}
	}
}

func TestBuildSystemErrors(t *testing.T) {
	if _, err := buildSystem("", "", "", unisem.DefaultOptions()); err == nil {
		t.Error("no source accepted")
	}
	if _, err := buildSystem("", "nonsense", "", unisem.DefaultOptions()); err == nil {
		t.Error("unknown demo accepted")
	}
	if _, err := buildSystem("/nonexistent-dir-xyz", "", "", unisem.DefaultOptions()); err == nil {
		t.Error("missing dir accepted")
	}
}

func TestLoadVocabSkipsComments(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "v.txt")
	os.WriteFile(path, []byte("# comment\n\nbadline\nproduct: Widget\n"), 0o644)
	sys, err := buildSystem(writeFixture(t), "", path, unisem.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
}
