package unisem

// One benchmark per experiment table/figure (DESIGN.md §4). Each bench
// regenerates its table through internal/experiments — the same code
// cmd/benchrunner uses — and additionally reports the headline scalar
// so `go test -bench` output carries the key numbers. Run
//
//	go test -bench=. -benchmem
//
// to regenerate everything; EXPERIMENTS.md records the resulting
// tables.

import (
	"strings"
	"testing"

	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/federate"
	"repro/internal/index"
	"repro/internal/logical"
	"repro/internal/retrieval"
	"repro/internal/semop"
	"repro/internal/slm"
	"repro/internal/sql"
	"repro/internal/table"
	"repro/internal/vector"
	"repro/internal/workload"
)

// BenchmarkTable1IndexConstruction regenerates Table 1 (index build
// cost sweep) once per -benchtime iteration and reports graph-vs-dense
// build time on a mid-size corpus in the loop.
func BenchmarkTable1IndexConstruction(b *testing.B) {
	b.Log(experiments.Table1IndexConstruction([]int{100, 400, 1600}).String())
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := index.NewBuilder(ner, index.DefaultOptions()).Build(c.Sources); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1DenseBaseline is the comparison build for Table 1.
func BenchmarkTable1DenseBaseline(b *testing.B) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	embedder := slm.NewEmbedder(slm.DefaultEmbeddingDim)
	records := c.Sources.Records()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := retrieval.NewDenseFromRecords(records, chunk.New(chunk.DefaultOptions()),
			embedder, vector.NewFlat(embedder.Dim())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2RetrievalQuality regenerates Table 2 and times a
// topology retrieval in the loop.
func BenchmarkTable2RetrievalQuality(b *testing.B) {
	b.Log(experiments.Table2RetrievalQuality().String())
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	g, _, err := index.NewBuilder(ner, index.DefaultOptions()).Build(c.Sources)
	if err != nil {
		b.Fatal(err)
	}
	topo := retrieval.NewTopology(g, ner, retrieval.DefaultTopologyOptions())
	query := c.Queries[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ev := topo.Retrieve(query, 8); len(ev) == 0 {
			b.Fatal("no evidence")
		}
	}
}

// BenchmarkTable3MultiEntityQA regenerates Table 3 and reports hybrid
// cross-modal EM as the headline metric.
func BenchmarkTable3MultiEntityQA(b *testing.B) {
	b.Log(experiments.Table3MultiEntityQA().String())
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		b.Fatal(err)
	}
	var em float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := core.EvaluateQA(h, c.Queries)
		em = stats[workload.Class("overall")].EM
	}
	b.ReportMetric(em, "EM")
}

// BenchmarkFigure2LatencyScaling regenerates the Figure 2 latency
// series and times a single hybrid answer in the loop.
func BenchmarkFigure2LatencyScaling(b *testing.B) {
	b.Log(experiments.Figure2LatencyScaling([]int{100, 400, 1600}).String())
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		b.Fatal(err)
	}
	q := c.Queries[0].Text
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ans := h.Answer(q); !ans.Answered() {
			b.Fatal(ans.Err)
		}
	}
}

// BenchmarkTable4Extraction regenerates the extraction-quality noise
// sweep and reports F1 at the default noise level.
func BenchmarkTable4Extraction(b *testing.B) {
	b.Log(experiments.Table4Extraction([]float64{0, 0.3, 0.6, 0.9}).String())
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	var f1 float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
		if err != nil {
			b.Fatal(err)
		}
		f1 = core.EvaluateExtraction(h.Catalog(), c.GoldFacts).F1
	}
	b.ReportMetric(f1, "F1")
}

// BenchmarkFigure3EntropyCalibration regenerates the calibration
// series and reports semantic-entropy AUROC at M=5.
func BenchmarkFigure3EntropyCalibration(b *testing.B) {
	tbl := experiments.Figure3EntropyCalibration([]int{3, 5, 10})
	b.Log(tbl.String())
	if !strings.Contains(tbl.String(), "semantic") {
		b.Fatal("calibration table malformed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Figure3EntropyCalibration([]int{5})
	}
}

// BenchmarkTable5Ablations regenerates the ablation table.
func BenchmarkTable5Ablations(b *testing.B) {
	b.Log(experiments.Table5Ablations().String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table5Ablations()
	}
}

// BenchmarkTable6CostProfile regenerates the SLM-vs-LLM cost table.
func BenchmarkTable6CostProfile(b *testing.B) {
	b.Log(experiments.Table6CostProfile().String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.Table6CostProfile()
	}
}

// BenchmarkTableS1ChunkSize regenerates the chunk-size ablation.
func BenchmarkTableS1ChunkSize(b *testing.B) {
	b.Log(experiments.TableS1ChunkSize([]int{32, 64, 128, 256}).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.TableS1ChunkSize([]int{64})
	}
}

// BenchmarkTableS2VectorIndex regenerates the flat-vs-IVF tradeoff.
func BenchmarkTableS2VectorIndex(b *testing.B) {
	b.Log(experiments.TableS2VectorIndex([]int{1, 2, 4, 8}).String())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.TableS2VectorIndex([]int{2})
	}
}

// ingestCorpus is the corpus used by the ingest-throughput benchmarks:
// large enough that the per-record SLM analysis dominates setup noise.
func ingestCorpus() *workload.Corpus {
	opts := workload.DefaultECommerceOptions()
	opts.Products = 48
	opts.ReviewsPerProduct = 12
	opts.Noise = 0.6
	return workload.ECommerce(opts)
}

// benchIngest builds the full hybrid system (graph index + relational
// table generation) at the given worker count and reports docs/sec.
func benchIngest(b *testing.B, workers int) {
	c := ingestCorpus()
	ner := slm.NewNER()
	c.Register(ner)
	opts := core.DefaultHybridOptions()
	opts.Workers = workers
	docs := c.Sources.Len()
	var stats index.Stats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := core.NewHybrid(c.Sources, ner, opts)
		if err != nil {
			b.Fatal(err)
		}
		stats = h.IndexStats
	}
	b.StopTimer()
	b.ReportMetric(float64(docs)*float64(b.N)/b.Elapsed().Seconds(), "docs/s")
	if stats.Nodes == 0 {
		b.Fatal("empty index")
	}
}

// BenchmarkSequentialIngest is the single-threaded baseline.
func BenchmarkSequentialIngest(b *testing.B) { benchIngest(b, 1) }

// BenchmarkParallelIngest fans the per-record SLM analysis and the
// per-document table generation across all cores; the graph/catalog
// merge stays sequential so IndexStats and answers are identical to
// BenchmarkSequentialIngest (asserted by TestParallelBuildDeterminism
// and verified again here on the first iteration).
func BenchmarkParallelIngest(b *testing.B) {
	c := ingestCorpus()
	ner := slm.NewNER()
	c.Register(ner)
	seqOpts := core.DefaultHybridOptions()
	seqOpts.Workers = 1
	seq, err := core.NewHybrid(c.Sources, ner, seqOpts)
	if err != nil {
		b.Fatal(err)
	}
	parOpts := core.DefaultHybridOptions()
	par, err := core.NewHybrid(c.Sources, ner, parOpts)
	if err != nil {
		b.Fatal(err)
	}
	ss, pp := seq.IndexStats, par.IndexStats
	ss.BuildTime, pp.BuildTime = 0, 0
	if ss != pp {
		b.Fatalf("parallel IndexStats diverge from sequential:\n  seq %+v\n  par %+v", ss, pp)
	}
	benchIngest(b, 0)
}

// BenchmarkAnswerAll measures batch query throughput with bounded
// parallelism over the full e-commerce query workload.
func BenchmarkAnswerAll(b *testing.B) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		b.Fatal(err)
	}
	questions := make([]string, 0, len(c.Queries))
	for _, q := range c.Queries {
		questions = append(questions, q.Text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ans := h.AnswerAll(questions, 0)
		if len(ans) != len(questions) {
			b.Fatal("short batch")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(questions))*float64(b.N)/b.Elapsed().Seconds(), "q/s")
}

// BenchmarkAnswerAllSequential is the single-worker baseline for
// BenchmarkAnswerAll.
func BenchmarkAnswerAllSequential(b *testing.B) {
	c := workload.ECommerce(workload.DefaultECommerceOptions())
	ner := slm.NewNER()
	c.Register(ner)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		b.Fatal(err)
	}
	questions := make([]string, 0, len(c.Queries))
	for _, q := range c.Queries {
		questions = append(questions, q.Text)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.AnswerAll(questions, 1)
	}
	b.StopTimer()
	b.ReportMetric(float64(len(questions))*float64(b.N)/b.Elapsed().Seconds(), "q/s")
}

// filteredAggPlan binds the benchmark's filtered-aggregate question —
// equality filters plus a SUM — against the benchmark-size e-commerce
// corpus (same corpus as the ingest benchmarks), where scan cost
// dominates planner overhead.
func filteredAggPlan(b *testing.B) (*core.Hybrid, *semop.Plan) {
	b.Helper()
	c := ingestCorpus()
	ner := slm.NewNER()
	c.Register(ner)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		b.Fatal(err)
	}
	q := semop.Parse("How many units of Product Alpha were sold in Q4?", ner)
	plan, err := semop.Bind(q, h.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	if len(plan.Filters) == 0 || len(plan.Aggs) == 0 {
		b.Fatalf("not a filtered aggregate: %s", plan)
	}
	return h, plan
}

// BenchmarkFederatedFilteredAggregate executes a filtered aggregate
// through the cost-based planner: the equality predicates push into
// the memory backend's hash index, so only the matching bucket is
// scanned. Compare rows_scanned/op (and ns/op) against
// BenchmarkPreFederationFilteredAggregate.
func BenchmarkFederatedFilteredAggregate(b *testing.B) {
	h, plan := filteredAggPlan(b)
	prepared := h.Federation().Prepare(plan)
	want, err := semop.Exec(plan, h.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	var scanned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, run, err := prepared.Execute()
		if err != nil {
			b.Fatal(err)
		}
		scanned = sumScanned(run)
		if res.Len() != want.Len() {
			b.Fatalf("federated result diverges: %d rows vs %d", res.Len(), want.Len())
		}
	}
	b.ReportMetric(float64(scanned), "rows_scanned/op")
}

// BenchmarkPreFederationFilteredAggregate is the pre-federation
// baseline: semop.Exec filters by scanning the whole base table.
func BenchmarkPreFederationFilteredAggregate(b *testing.B) {
	h, plan := filteredAggPlan(b)
	base, err := h.Catalog().Get(plan.Table)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := semop.Exec(plan, h.Catalog()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(base.Len()), "rows_scanned/op")
}

// joinAggPlan binds the seeded-join benchmark question: an aggregate
// over the driving table with an equality on the join key, plus a
// threshold condition that lives in a joined table. The optimizer's
// reorder rule propagates the key equality into the joined side, where
// the memory backend's equality index turns a full scan into a bucket
// scan.
func joinAggPlan(b *testing.B) (*core.Hybrid, *semop.Plan) {
	b.Helper()
	c := ingestCorpus()
	ner := slm.NewNER()
	c.Register(ner)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		b.Fatal(err)
	}
	q := semop.Parse("What is the average rating of Product Alpha among products with a sales increase of more than 15%?", ner)
	plan, err := semop.Bind(q, h.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	if plan.JoinTable == "" || len(plan.Filters) == 0 {
		b.Fatalf("not a filtered join: %s", plan)
	}
	return h, plan
}

func sumScanned(run *federate.Run) int {
	scanned := 0
	for _, fr := range run.Fragments {
		scanned += fr.ActScanned
	}
	return scanned
}

// BenchmarkFederatedJoinAggregate executes the seeded join through the
// full rule pipeline: reorder propagates the driving side's key
// equality into the join fragment, so the joined table is read through
// its equality index instead of scanned whole. Compare rows_scanned/op
// (and ns/op) against BenchmarkPreIRJoinAggregate.
func BenchmarkFederatedJoinAggregate(b *testing.B) {
	h, plan := joinAggPlan(b)
	prepared := h.Federation().Prepare(plan)
	want, err := semop.Exec(plan, h.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	var scanned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, run, err := prepared.Execute()
		if err != nil {
			b.Fatal(err)
		}
		scanned = sumScanned(run)
		if res.Len() != want.Len() {
			b.Fatalf("federated result diverges: %d rows vs %d", res.Len(), want.Len())
		}
	}
	b.ReportMetric(float64(scanned), "rows_scanned/op")
}

// BenchmarkPreIRJoinAggregate is the pre-optimizer baseline: the same
// plan lowered without the rule passes, so the join side scans its
// whole table.
func BenchmarkPreIRJoinAggregate(b *testing.B) {
	h, plan := joinAggPlan(b)
	opt := logical.Unoptimized(semop.Compile(plan))
	var scanned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, run, err := h.Federation().ExecuteIR(opt)
		if err != nil {
			b.Fatal(err)
		}
		scanned = sumScanned(run)
	}
	b.ReportMetric(float64(scanned), "rows_scanned/op")
}

// BenchmarkPrunedFilteredAggregate executes a filtered aggregate whose
// range predicate provably matches nothing: every fragment's zone map
// refutes it at plan time, so the backend scan is skipped entirely and
// rows_scanned/op is exactly 0 (benchguard-gated — an equality
// predicate would already hit an empty index bucket, so the shape uses
// a range predicate only zone maps can refute).
func BenchmarkPrunedFilteredAggregate(b *testing.B) {
	c := ingestCorpus()
	ner := slm.NewNER()
	c.Register(ner)
	h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
	if err != nil {
		b.Fatal(err)
	}
	const query = "SELECT SUM(change_pct) AS total FROM metric_changes WHERE change_pct > 1000000"
	stmt, err := sql.Parse(query)
	if err != nil {
		b.Fatal(err)
	}
	node, err := sql.Compile(stmt, h.Catalog())
	if err != nil {
		b.Fatal(err)
	}
	opt := logical.Optimize(node, logical.CatalogStats(h.Catalog()))
	want, err := sql.Exec(h.Catalog(), query) // unpruned reference
	if err != nil {
		b.Fatal(err)
	}
	var scanned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, run, err := h.Federation().ExecuteIR(opt)
		if err != nil {
			b.Fatal(err)
		}
		scanned = sumScanned(run)
		if res.Len() != want.Len() {
			b.Fatalf("pruned result diverges: %d rows vs %d", res.Len(), want.Len())
		}
	}
	b.StopTimer()
	if scanned != 0 {
		b.Fatalf("non-matching predicate scanned %d rows, want 0", scanned)
	}
	b.ReportMetric(float64(scanned), "rows_scanned/op")
}

// statsPutRows builds the shared row set for the statistics-maintenance
// benchmarks: a low-NDV string column, a unique int column (the
// expensive sort) and a float column with nulls.
func statsPutRows(n int) [][]table.Value {
	products := []string{"Alpha", "Beta", "Gamma", "Delta"}
	rows := make([][]table.Value, n)
	for i := range rows {
		amount := table.F(float64(i % 997))
		if i%53 == 0 {
			amount = table.Null(table.TypeFloat)
		}
		rows[i] = []table.Value{table.S(products[i%len(products)]), table.I(int64(i)), amount}
	}
	return rows
}

// benchStatsPuts measures the append-heavy ingest shape: one base Put
// of 1024 rows, then 32 batches of 8 appended rows each followed by a
// re-Put. With poison, every re-Put first replaces a prefix row slice,
// defeating the append-only detection and forcing the full O(n log n)
// statistics rebuild — the pre-incremental cost.
func benchStatsPuts(b *testing.B, poison bool) {
	const base, batches, perBatch = 1024, 32, 8
	rows := statsPutRows(base + batches*perBatch)
	schema := table.Schema{
		{Name: "product", Type: table.TypeString},
		{Name: "id", Type: table.TypeInt},
		{Name: "amount", Type: table.TypeFloat},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := table.New("puts", schema)
		t.Rows = append([][]table.Value(nil), rows[:base]...)
		c := table.NewCatalog()
		c.Put(t)
		for batch := 0; batch < batches; batch++ {
			t.Rows = append(t.Rows, rows[base+batch*perBatch:base+(batch+1)*perBatch]...)
			if poison {
				t.Rows[0] = append([]table.Value(nil), t.Rows[0]...)
			}
			c.Put(t)
		}
		if c.StatsOf("puts").Rows != len(rows) {
			b.Fatal("stats out of date")
		}
	}
}

// BenchmarkIncrementalPut is the append-only ingest path: statistics
// merge only each batch's delta and zone maps extend only the open
// tail fragment. Compare ns/op against BenchmarkFullRebuildPut — the
// benchguard baseline pins the incremental path staying a multiple
// cheaper.
func BenchmarkIncrementalPut(b *testing.B) { benchStatsPuts(b, false) }

// BenchmarkFullRebuildPut forces the slow path on every re-Put (an
// in-place row replacement invalidates the append-only detection), so
// each Put pays the full statistics rebuild.
func BenchmarkFullRebuildPut(b *testing.B) { benchStatsPuts(b, true) }

// BenchmarkEstimateAccuracy runs every bindable workload question of
// both domains through the federated planner and reports the maximum
// per-fragment q-error (estimated vs actual rows, scanned and output,
// both sides floored at one row) as the machine-independent
// q_error_max metric. benchguard gates it exactly, like rows_scanned:
// the planner and corpus are deterministic, so any increase is a cost
// model regression, not noise.
func BenchmarkEstimateAccuracy(b *testing.B) {
	type item struct {
		h    *core.Hybrid
		plan *semop.Plan
	}
	var items []item
	for _, c := range []*workload.Corpus{
		workload.ECommerce(workload.DefaultECommerceOptions()),
		workload.Healthcare(workload.DefaultHealthcareOptions()),
	} {
		ner := slm.NewNER()
		c.Register(ner)
		h, err := core.NewHybrid(c.Sources, ner, core.DefaultHybridOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, q := range c.Queries {
			plan, err := semop.Bind(semop.Parse(q.Text, ner), h.Catalog())
			if err != nil {
				continue
			}
			items = append(items, item{h: h, plan: plan})
		}
	}
	if len(items) == 0 {
		b.Fatal("no workload question bound")
	}
	var maxQ float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		maxQ = 0
		for _, it := range items {
			_, run, err := it.h.Federation().Execute(it.plan)
			if err != nil {
				b.Fatal(err)
			}
			for _, fr := range run.Fragments {
				if q := federate.QError(fr.Est.Scanned, fr.ActScanned); q > maxQ {
					maxQ = q
				}
				if q := federate.QError(fr.Est.Out, fr.ActOut); q > maxQ {
					maxQ = q
				}
			}
		}
	}
	b.ReportMetric(maxQ, "q_error_max")
	b.ReportMetric(float64(len(items))*float64(b.N)/b.Elapsed().Seconds(), "q/s")
}

// BenchmarkAskEndToEnd times the public API answer path.
func BenchmarkAskEndToEnd(b *testing.B) {
	sys := New()
	sys.Vocabulary(VocabProduct, "Product Alpha", "Product Beta")
	sys.AddDocument("reviews", "r1", "Customer C-1 rated Product Alpha 5 stars.")
	sys.AddCSV("sales", strings.NewReader("product,quarter,revenue\nProduct Alpha,Q2,1200\n"))
	if err := sys.Build(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask("What was the revenue of Product Alpha in Q2?"); err != nil {
			b.Fatal(err)
		}
	}
}

// vecBenchCatalog builds the synthetic 8192-row fact table (32
// fragments) the executor benchmarks share. The catalog caches the
// columnar fragments, so vectorized runs measure kernel cost, not
// column extraction.
func vecBenchCatalog(b *testing.B) *table.Catalog {
	b.Helper()
	c := table.NewCatalog()
	t := table.New("vec_facts", table.Schema{
		{Name: "region", Type: table.TypeString},
		{Name: "units", Type: table.TypeInt},
		{Name: "revenue", Type: table.TypeFloat},
	})
	regions := []string{"north", "south", "east", "west", "central"}
	for i := 0; i < 8192; i++ {
		rev := table.F(float64(i%1009) * 0.75)
		if i%67 == 0 {
			rev = table.Null(table.TypeFloat)
		}
		t.MustAppend([]table.Value{table.S(regions[i%len(regions)]), table.I(int64(i % 101)), rev})
	}
	c.Put(t)
	return c
}

// vecBenchSetup returns the catalog plus the filtered-group-by tree:
// Aggregate(group=[region] SUM(revenue)) over Filter(units > 40).
func vecBenchSetup(b *testing.B) (*table.Catalog, *logical.Node) {
	b.Helper()
	root := &logical.Node{Op: logical.OpAggregate, GroupBy: []string{"region"},
		Aggs: []table.Agg{{Func: table.AggSum, Col: "revenue"}},
		In: []*logical.Node{{Op: logical.OpFilter,
			Preds: []table.Pred{{Col: "units", Op: table.OpGt, Val: table.I(40)}},
			In:    []*logical.Node{{Op: logical.OpScan, Table: "vec_facts"}}}}}
	return vecBenchCatalog(b), root
}

// vecSortBenchSetup returns the catalog plus the top-k tree:
// Limit(100) over Sort(revenue DESC, region) over the whole 8192-row
// table — the ranked-answer shape ORDER BY + LIMIT queries compile to.
func vecSortBenchSetup(b *testing.B) (*table.Catalog, *logical.Node) {
	b.Helper()
	root := &logical.Node{Op: logical.OpLimit, N: 100,
		In: []*logical.Node{{Op: logical.OpSort,
			Keys: []table.SortKey{{Col: "revenue", Desc: true}, {Col: "region"}},
			In:   []*logical.Node{{Op: logical.OpScan, Table: "vec_facts"}}}}}
	return vecBenchCatalog(b), root
}

// BenchmarkVecScanFilterAggregate runs the filtered group-by through
// the vectorized columnar executor at one worker. Compare ns/op and
// allocs/op against BenchmarkRowScanFilterAggregate: the typed kernels
// accumulate over column arrays with selection vectors, so per-row
// boxing and group-key allocations amortize toward zero.
func BenchmarkVecScanFilterAggregate(b *testing.B) {
	c, root := vecBenchSetup(b)
	if _, err := logical.ExecVec(root, c, 1); err != nil { // warm fragment cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logical.ExecVec(root, c, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowScanFilterAggregate is the row-interpreter baseline for
// the same tree: per-row predicate evaluation and per-group key
// strings, the cost the columnar kernels exist to amortize.
func BenchmarkRowScanFilterAggregate(b *testing.B) {
	c, root := vecBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logical.Exec(root, c); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVecSortLimit runs the 8192-row ORDER BY + LIMIT shape
// through the sort kernel: key columns extracted once to typed arrays,
// then a stable permutation sort — no Value boxing per comparison.
// Compare ns/op and allocs/op against BenchmarkRowSortLimit.
func BenchmarkVecSortLimit(b *testing.B) {
	c, root := vecSortBenchSetup(b)
	if _, err := logical.ExecVec(root, c, 1); err != nil { // warm fragment cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logical.ExecVec(root, c, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRowSortLimit is the row-interpreter baseline for the same
// tree: table.Sort clones the rows and boxes two Values through
// table.Compare on every comparison of the sort.
func BenchmarkRowSortLimit(b *testing.B) {
	c, root := vecSortBenchSetup(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := logical.Exec(root, c); err != nil {
			b.Fatal(err)
		}
	}
}

// rollupBenchSetup builds the dashboard-aggregate fixture: an 8192-row
// fact table over 5 regions, a federated executor over its catalog, and
// the optimized plan for the unfiltered group-by aggregate. With
// withRollup, a region-grain rollup is registered first, so the rollup
// pass routes the aggregate onto the 5-row materialization; without, the
// same plan aggregates the base table.
func rollupBenchSetup(b *testing.B, withRollup bool) (*federate.Executor, *logical.Optimized, *table.Table) {
	b.Helper()
	c := table.NewCatalog()
	t := table.New("rollup_facts", table.Schema{
		{Name: "region", Type: table.TypeString},
		{Name: "units", Type: table.TypeInt},
		{Name: "revenue", Type: table.TypeFloat},
	})
	regions := []string{"north", "south", "east", "west", "central"}
	for i := 0; i < 8192; i++ {
		rev := table.F(float64(i%1009) * 0.75)
		if i%67 == 0 {
			rev = table.Null(table.TypeFloat)
		}
		t.MustAppend([]table.Value{table.S(regions[i%len(regions)]), table.I(int64(i % 101)), rev})
	}
	c.Put(t)
	if withRollup {
		if err := c.AddRollup(table.RollupDef{
			Name:    "facts_by_region",
			Base:    "rollup_facts",
			GroupBy: []string{"region"},
			Aggs: []table.Agg{
				{Func: table.AggSum, Col: "revenue"},
				{Func: table.AggCount, Col: "", As: "n"},
			},
		}); err != nil {
			b.Fatal(err)
		}
	}
	root := &logical.Node{Op: logical.OpAggregate, GroupBy: []string{"region"},
		Aggs: []table.Agg{
			{Func: table.AggSum, Col: "revenue"},
			{Func: table.AggCount, Col: "", As: "n"},
		},
		In: []*logical.Node{{Op: logical.OpScan, Table: "rollup_facts"}}}
	opt := logical.Optimize(root, logical.CatalogStats(c))
	fed := federate.New(c.Epoch, federate.Options{}, federate.NewMemory(c))
	return fed, opt, t
}

// BenchmarkRollupRoutedAggregate executes the group-by aggregate after
// rollup routing: the optimizer rewrote it onto the materialized 5-row
// rollup, so each execution scans exactly the group count instead of
// the 8192-row base table. Compare ns/op and rows_scanned/op against
// BenchmarkUnroutedAggregate — the benchguard baseline pins both the
// speedup and the exact rows_scanned = 5.
func BenchmarkRollupRoutedAggregate(b *testing.B) {
	fed, opt, base := rollupBenchSetup(b, true)
	if len(opt.Rollups) != 1 {
		b.Fatalf("aggregate not routed: %v", opt.Trace)
	}
	want, err := table.Aggregate(base, []string{"region"}, []table.Agg{
		{Func: table.AggSum, Col: "revenue"},
		{Func: table.AggCount, Col: "", As: "n"},
	})
	if err != nil {
		b.Fatal(err)
	}
	var scanned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, run, err := fed.ExecuteIR(opt)
		if err != nil {
			b.Fatal(err)
		}
		scanned = sumScanned(run)
		if res.Len() != want.Len() {
			b.Fatalf("routed result diverges: %d rows vs %d", res.Len(), want.Len())
		}
	}
	b.StopTimer()
	if scanned != want.Len() {
		b.Fatalf("routed aggregate scanned %d rows, want the rollup's %d groups", scanned, want.Len())
	}
	b.ReportMetric(float64(scanned), "rows_scanned/op")
}

// BenchmarkUnroutedAggregate is the same plan over the same catalog
// without a registered rollup: every execution re-aggregates all 8192
// base rows.
func BenchmarkUnroutedAggregate(b *testing.B) {
	fed, opt, base := rollupBenchSetup(b, false)
	if len(opt.Rollups) != 0 {
		b.Fatalf("unexpected routing: %v", opt.Rollups)
	}
	var scanned int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, run, err := fed.ExecuteIR(opt)
		if err != nil {
			b.Fatal(err)
		}
		scanned = sumScanned(run)
		if res.Len() != 5 {
			b.Fatalf("result rows = %d, want 5", res.Len())
		}
	}
	b.StopTimer()
	if scanned != base.Len() {
		b.Fatalf("unrouted aggregate scanned %d rows, want the full %d", scanned, base.Len())
	}
	b.ReportMetric(float64(scanned), "rows_scanned/op")
}
