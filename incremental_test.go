package unisem

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/index"
)

func TestIngestUpdatesAnswers(t *testing.T) {
	sys := buildDemo(t)

	// Before ingest: Product Beta has one 2-star review.
	ans, err := sys.Ask("What is the average rating of Product Beta?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "2" {
		t.Fatalf("pre-ingest rating = %q", ans.Text)
	}
	nodesBefore := sys.Stats().Nodes

	// Live-ingest a new review; no rebuild.
	if err := sys.Ingest("reviews", "r-live", "Customer C-9 rated Product Beta 4 stars."); err != nil {
		t.Fatal(err)
	}
	if sys.Stats().Nodes <= nodesBefore {
		t.Error("ingest did not grow the graph")
	}
	ans, err = sys.Ask("What is the average rating of Product Beta?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "3" { // (2+4)/2
		t.Errorf("post-ingest rating = %q", ans.Text)
	}
}

func TestIngestNewEntityRetrievable(t *testing.T) {
	sys := buildDemo(t)
	sys.Vocabulary(VocabProduct, "Product Nova")
	if err := sys.Ingest("reviews", "r-nova", "Customer C-11 rated Product Nova 5 stars. Product Nova shipped quickly."); err != nil {
		t.Fatal(err)
	}
	ans, err := sys.Ask("What is the average rating of Product Nova?")
	if err != nil {
		t.Fatal(err)
	}
	if ans.Text != "5" {
		t.Errorf("new entity rating = %q (plan %s)", ans.Text, ans.Plan)
	}
	found := false
	for _, e := range ans.Evidence {
		if strings.Contains(e.Text, "Product Nova") {
			found = true
		}
	}
	if !found {
		t.Error("ingested document not retrieved as evidence")
	}
}

func TestIngestDuplicateRejected(t *testing.T) {
	sys := buildDemo(t)
	if err := sys.Ingest("reviews", "r1", "duplicate id"); !errors.Is(err, index.ErrDocExists) {
		t.Errorf("duplicate ingest: %v", err)
	}
}

func TestIngestBeforeBuild(t *testing.T) {
	sys := New()
	if err := sys.Ingest("x", "y", "z"); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("err = %v", err)
	}
}

func TestExportKnowledgeTSV(t *testing.T) {
	sys := buildDemo(t)
	var buf bytes.Buffer
	if err := sys.ExportKnowledge(&buf, KnowledgeTSV); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "received") {
		t.Errorf("no treatment fact in:\n%s", out)
	}
	// TSV shape: 4 tab-separated fields per line.
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if len(strings.Split(line, "\t")) != 4 {
			t.Errorf("bad TSV line %q", line)
		}
	}
}

func TestExportKnowledgeJSON(t *testing.T) {
	sys := buildDemo(t)
	var buf bytes.Buffer
	if err := sys.ExportKnowledge(&buf, KnowledgeJSON); err != nil {
		t.Fatal(err)
	}
	var triples []index.Triple
	if err := json.Unmarshal(buf.Bytes(), &triples); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(triples) == 0 {
		t.Fatal("no triples")
	}
	// Deterministic ordering.
	for i := 1; i < len(triples); i++ {
		if triples[i].Subject < triples[i-1].Subject {
			t.Fatal("triples not sorted")
		}
	}
	// Provenance present on at least one fact.
	hasSource := false
	for _, tr := range triples {
		if len(tr.Sources) > 0 {
			hasSource = true
		}
	}
	if !hasSource {
		t.Error("no source provenance")
	}
}

func TestExportKnowledgeErrors(t *testing.T) {
	sys := New()
	if err := sys.ExportKnowledge(&bytes.Buffer{}, KnowledgeTSV); !errors.Is(err, ErrNotBuilt) {
		t.Errorf("before build: %v", err)
	}
	built := buildDemo(t)
	if err := built.ExportKnowledge(&bytes.Buffer{}, KnowledgeFormat("xml")); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestIngestGrowsKnowledge(t *testing.T) {
	sys := buildDemo(t)
	var before bytes.Buffer
	sys.ExportKnowledge(&before, KnowledgeTSV)
	if err := sys.Ingest("notes", "n-live", "Patient P-9 received Drug A on 2024-06-01."); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	sys.ExportKnowledge(&after, KnowledgeTSV)
	if after.Len() <= before.Len() {
		t.Error("knowledge did not grow after ingest")
	}
}
