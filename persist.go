package unisem

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/table"
)

// Save persists a built system's index and catalog to dir (created if
// absent): graph.json holds the heterogeneous graph, catalog.json the
// native plus SLM-generated tables. Vocabulary is not persisted — the
// loader re-registers it (gazetteers are configuration, not state).
func (s *System) Save(dir string) error {
	if !s.built {
		return ErrNotBuilt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("unisem: save: %w", err)
	}
	gf, err := os.Create(filepath.Join(dir, "graph.json"))
	if err != nil {
		return fmt.Errorf("unisem: save: %w", err)
	}
	defer gf.Close()
	if err := s.hybrid.Graph().WriteJSON(gf); err != nil {
		return fmt.Errorf("unisem: save graph: %w", err)
	}
	cf, err := os.Create(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return fmt.Errorf("unisem: save: %w", err)
	}
	defer cf.Close()
	if err := s.hybrid.Catalog().WriteJSON(cf); err != nil {
		return fmt.Errorf("unisem: save catalog: %w", err)
	}
	return nil
}

// Load reconstructs a system saved with Save. The configure callback
// runs before the index attaches, so vocabulary registered there is in
// effect for all queries:
//
//	sys, err := unisem.Load(dir, func(s *unisem.System) {
//	    s.Vocabulary(unisem.VocabProduct, "Product Alpha")
//	})
func Load(dir string, configure func(*System)) (*System, error) {
	return LoadWithOptions(dir, DefaultOptions(), configure)
}

// LoadWithOptions is Load with explicit options.
func LoadWithOptions(dir string, opts Options, configure func(*System)) (*System, error) {
	sys := NewWithOptions(opts)
	if configure != nil {
		configure(sys)
	}
	gf, err := os.Open(filepath.Join(dir, "graph.json"))
	if err != nil {
		return nil, fmt.Errorf("unisem: load: %w", err)
	}
	defer gf.Close()
	g, err := graph.ReadJSON(gf)
	if err != nil {
		return nil, fmt.Errorf("unisem: load graph: %w", err)
	}
	cf, err := os.Open(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, fmt.Errorf("unisem: load: %w", err)
	}
	defer cf.Close()
	catalog, err := table.ReadCatalogJSON(cf)
	if err != nil {
		return nil, fmt.Errorf("unisem: load catalog: %w", err)
	}

	hopts := core.DefaultHybridOptions()
	hopts.EvidenceK = sys.opts.EvidenceK
	hopts.EntropyM = sys.opts.EntropySamples
	hopts.Seed = sys.opts.Seed
	hopts.Workers = sys.opts.Workers
	hopts.CacheSize = sys.opts.AnswerCache
	sys.hybrid = core.NewHybridFromState(g, catalog, sys.ner, hopts)
	for _, b := range sys.backends {
		sys.hybrid.RegisterBackend(b)
	}
	sys.built = true
	return sys, nil
}
